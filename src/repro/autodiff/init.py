"""Parameter initializers.

All initializers take an explicit :class:`numpy.random.Generator` so every
training run in the benchmark is reproducible from a single seed, matching
the paper's protocol of 10 seeded runs per configuration.
"""

from __future__ import annotations

import numpy as np


def zeros(shape: tuple, dtype=np.float32) -> np.ndarray:
    """All-zero initialization (biases, filter residual params)."""
    return np.zeros(shape, dtype=dtype)


def ones(shape: tuple, dtype=np.float32) -> np.ndarray:
    """All-one initialization (scale parameters)."""
    return np.ones(shape, dtype=dtype)


def constant(shape: tuple, value: float, dtype=np.float32) -> np.ndarray:
    """Constant-fill initialization (fixed-filter coefficient warm starts)."""
    return np.full(shape, value, dtype=dtype)


def glorot_uniform(shape: tuple, rng: np.random.Generator, dtype=np.float32) -> np.ndarray:
    """Glorot / Xavier uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(dtype)


def kaiming_uniform(shape: tuple, rng: np.random.Generator, dtype=np.float32) -> np.ndarray:
    """Kaiming / He uniform for ReLU networks: U(-a, a), a = sqrt(6/fan_in)."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(dtype)


def uniform(shape: tuple, rng: np.random.Generator, low: float = -1.0, high: float = 1.0,
            dtype=np.float32) -> np.ndarray:
    """Plain uniform initialization over ``[low, high)``."""
    return rng.uniform(low, high, size=shape).astype(dtype)


def _fans(shape: tuple) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
