"""Reverse-mode autodiff over numpy: the training substrate.

Public surface::

    from repro.autodiff import Tensor, no_grad, spmm
    from repro.autodiff import functional as F
    from repro.autodiff.optim import Adam
"""

from . import functional, init, optim
from .sparse import spmm, spmm_numpy
from .tensor import (
    Tensor,
    add_allocation_hook,
    as_tensor,
    concatenate,
    is_grad_enabled,
    no_grad,
    remove_allocation_hook,
    set_allocation_hook,
    set_op_hook,
    stack,
    where,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "add_allocation_hook",
    "remove_allocation_hook",
    "set_allocation_hook",
    "set_op_hook",
    "spmm",
    "spmm_numpy",
    "functional",
    "init",
    "optim",
]
