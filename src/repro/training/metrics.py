"""Evaluation metrics, implemented from scratch.

The paper's Table 3 assigns accuracy to multi-class datasets and ROC AUC
to the binary ones; the regression task of Table 7 uses R². All metrics
take raw numpy arrays so they work on any scheme's outputs.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy from (N, C) logits and integer labels."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise TrainingError(f"accuracy expects (N, C) logits, got {logits.shape}")
    predictions = logits.argmax(axis=1)
    return float((predictions == labels).mean())


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Binary ROC AUC via the rank statistic (ties get midranks).

    ``scores`` may be (N,) raw scores, (N, 1), or (N, 2) logits — for the
    latter, the positive-class margin is used.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if scores.ndim == 2:
        if scores.shape[1] == 1:
            scores = scores[:, 0]
        elif scores.shape[1] == 2:
            scores = scores[:, 1] - scores[:, 0]
        else:
            raise TrainingError(
                f"roc_auc expects binary scores, got shape {scores.shape}"
            )
    positives = int((labels == 1).sum())
    negatives = int((labels == 0).sum())
    if positives == 0 or negatives == 0:
        raise TrainingError("roc_auc needs both classes present")
    ranks = _midranks(scores)
    positive_rank_sum = ranks[labels == 1].sum()
    auc = (positive_rank_sum - positives * (positives + 1) / 2.0) / (positives * negatives)
    return float(auc)


def _midranks(values: np.ndarray) -> np.ndarray:
    """1-based ranks with ties assigned their average rank."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=np.float64)
    sorted_values = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def r2_score(prediction: np.ndarray, target: np.ndarray) -> float:
    """Coefficient of determination, column-averaged for multi-channel."""
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise TrainingError(
            f"shape mismatch: prediction {prediction.shape} vs target {target.shape}"
        )
    if prediction.ndim == 1:
        prediction = prediction[:, None]
        target = target[:, None]
    residual = ((target - prediction) ** 2).sum(axis=0)
    total = ((target - target.mean(axis=0, keepdims=True)) ** 2).sum(axis=0)
    total = np.maximum(total, 1e-12)
    return float(np.mean(1.0 - residual / total))


def macro_f1(logits: np.ndarray, labels: np.ndarray) -> float:
    """Macro-averaged F1 over classes present in the labels."""
    predictions = np.asarray(logits).argmax(axis=1)
    labels = np.asarray(labels)
    scores = []
    for cls in np.unique(labels):
        tp = int(((predictions == cls) & (labels == cls)).sum())
        fp = int(((predictions == cls) & (labels != cls)).sum())
        fn = int(((predictions != cls) & (labels == cls)).sum())
        denominator = 2 * tp + fp + fn
        scores.append(2 * tp / denominator if denominator else 0.0)
    return float(np.mean(scores))


METRICS = {
    "accuracy": accuracy,
    "roc_auc": roc_auc,
    "r2": r2_score,
    "macro_f1": macro_f1,
}


def evaluate(metric: str, outputs: np.ndarray, targets: np.ndarray) -> float:
    """Dispatch on metric name (the Table 3 ``Metric`` column)."""
    fn = METRICS.get(metric)
    if fn is None:
        raise TrainingError(f"unknown metric {metric!r}; known: {list(METRICS)}")
    return fn(outputs, targets)
