"""Training: schemes (FB/MB/GP), loop machinery, metrics, hyper search."""

from .checkpoint import load_checkpoint, save_checkpoint
from .hyper import (
    FILTER_SEARCH_RANGES,
    INDIVIDUAL_RANGES,
    UNIVERSAL_DEFAULTS,
    UNIVERSAL_GRID,
    SearchSpace,
    random_search,
    sample_configuration,
)
from .loop import (
    EarlyStopper,
    RunResult,
    TrainConfig,
    build_optimizer,
    grad_global_norm,
    make_device,
    record_epoch_telemetry,
)
from .metrics import METRICS, accuracy, evaluate, macro_f1, r2_score, roc_auc
from .schemes import (
    SCHEMES,
    FullBatchTrainer,
    GraphPartitionTrainer,
    MiniBatchTrainer,
)

__all__ = [
    "TrainConfig",
    "RunResult",
    "EarlyStopper",
    "build_optimizer",
    "make_device",
    "grad_global_norm",
    "record_epoch_telemetry",
    "FullBatchTrainer",
    "MiniBatchTrainer",
    "GraphPartitionTrainer",
    "SCHEMES",
    "accuracy",
    "roc_auc",
    "r2_score",
    "macro_f1",
    "evaluate",
    "METRICS",
    "SearchSpace",
    "random_search",
    "sample_configuration",
    "UNIVERSAL_GRID",
    "UNIVERSAL_DEFAULTS",
    "INDIVIDUAL_RANGES",
    "FILTER_SEARCH_RANGES",
    "save_checkpoint",
    "load_checkpoint",
]
