"""Shared training-loop machinery: config, results, early stopping.

The concrete learning schemes (:mod:`repro.training.schemes`) differ in
*where data lives* — that is the paper's whole point — but share the same
epoch budget, optimizer construction, early stopping, and result record,
which live here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .. import telemetry
from ..telemetry import live
from ..autodiff.optim import Adam
from ..nn.module import Module
from ..runtime.device import DeviceModel
from ..runtime.profiler import StageProfiler


@dataclass
class TrainConfig:
    """Hyperparameters of one training run (Table 4's knobs).

    The paper trains 500 epochs on GPUs; the default here is shorter so
    CPU-only sweeps finish, and every bench records the epoch count used.
    """

    epochs: int = 100
    lr: float = 0.01
    weight_decay: float = 5e-4
    lr_filter: float = 0.05
    weight_decay_filter: float = 5e-5
    hidden: int = 64
    phi0_layers: int = 1   # full-batch pre-transform depth (MB forces 0)
    phi1_layers: int = 1   # post-transform depth (paper MB default is 2)
    dropout: float = 0.5
    batch_size: int = 4096
    patience: int = 50
    eval_every: int = 1
    rho: float = 0.5
    backend: str = "csr"
    metric: str = "accuracy"
    seed: int = 0

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)


@dataclass
class RunResult:
    """Outcome of one (filter, dataset, scheme, seed) run."""

    status: str                  # "ok" | "oom"
    test_score: float = float("nan")
    valid_score: float = float("nan")
    epochs_run: int = 0
    profiler: StageProfiler = field(default_factory=StageProfiler)
    device_peak_bytes: int = 0
    ram_peak_bytes: int = 0
    filter_params: Optional[Dict[str, np.ndarray]] = None
    #: Final full-graph logits (n, C) from the best model, for node-wise
    #: analyses (degree bias, t-SNE); None after an OOM.
    predictions: Optional[np.ndarray] = None
    #: Graph-partition expressiveness accounting (None for other schemes):
    #: directed edges severed by the clustering and their fraction of m.
    cut_edges: Optional[int] = None
    cut_edge_fraction: Optional[float] = None
    num_parts: Optional[int] = None

    @property
    def is_oom(self) -> bool:
        return self.status == "oom"

    @property
    def precompute_seconds(self) -> float:
        return self.profiler.seconds("precompute")

    @property
    def train_seconds_per_epoch(self) -> float:
        stage = self.profiler.stages.get("train")
        return stage.seconds_per_call if stage else 0.0

    @property
    def inference_seconds(self) -> float:
        return self.profiler.seconds("inference")

    def summary(self) -> Dict[str, float]:
        summary = {
            "status": self.status,
            "test": self.test_score,
            "valid": self.valid_score,
            "epochs": self.epochs_run,
            "precompute_s": self.precompute_seconds,
            "train_s_per_epoch": self.train_seconds_per_epoch,
            "inference_s": self.inference_seconds,
            "device_peak_bytes": self.device_peak_bytes,
            "ram_peak_bytes": self.ram_peak_bytes,
        }
        if self.cut_edges is not None:
            summary["cut_edges"] = self.cut_edges
            summary["cut_edge_fraction"] = self.cut_edge_fraction
            summary["num_parts"] = self.num_parts
        return summary


class EarlyStopper:
    """Patience-based early stopping on the validation score (higher=better)."""

    def __init__(self, patience: int):
        self.patience = int(patience)
        self.best_score = -np.inf
        self.best_state: Optional[Dict[str, np.ndarray]] = None
        self.bad_epochs = 0

    def update(self, score: float, model: Module) -> bool:
        """Record a validation score; returns True when training should stop."""
        if score > self.best_score:
            self.best_score = score
            self.best_state = model.state_dict()
            self.bad_epochs = 0
            return False
        self.bad_epochs += 1
        return self.patience > 0 and self.bad_epochs >= self.patience

    def restore(self, model: Module) -> None:
        """Load the best-validation parameters back into the model."""
        if self.best_state is not None:
            model.load_state_dict(self.best_state)


def build_optimizer(model, config: TrainConfig) -> Adam:
    """Adam with the paper's two parameter groups: transforms vs filter.

    Models exposing ``filter_parameters()`` / ``transform_parameters()``
    (the decoupled family) get separate learning rates and weight decays
    for θ/γ; plain modules fall back to a single group.
    """
    if hasattr(model, "filter_parameters") and model.filter_parameters():
        groups = [
            {
                "params": model.transform_parameters(),
                "lr": config.lr,
                "weight_decay": config.weight_decay,
            },
            {
                "params": model.filter_parameters(),
                "lr": config.lr_filter,
                "weight_decay": config.weight_decay_filter,
            },
        ]
        return Adam(groups)
    return Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)


def make_device(capacity_gib: Optional[float] = None, name: str = "sim") -> DeviceModel:
    """Device factory used by the schemes (None = unbounded profiling)."""
    capacity = None if capacity_gib is None else int(capacity_gib * 1024 ** 3)
    return DeviceModel(capacity_bytes=capacity, name=name)


def grad_global_norm(model: Module) -> float:
    """Global L2 norm over every parameter gradient (0.0 when none set)."""
    total = 0.0
    for param in model.parameters():
        if param.grad is not None:
            total += float(np.sum(param.grad.astype(np.float64) ** 2))
    return math.sqrt(total)


def record_epoch_telemetry(
    epoch: int,
    loss: Optional[float],
    valid_score: Optional[float] = None,
    stopper: Optional[EarlyStopper] = None,
    model: Optional[Module] = None,
) -> None:
    """Emit one per-epoch telemetry event plus metric-series updates.

    Feeds the trace's ``epoch`` events (loss, eval metric, grad norm,
    early-stop state) and the loss/score histograms the report's sparkline
    table renders. A no-op when telemetry is disabled, so trainers call it
    unconditionally; the (mildly costly) grad norm is only computed while
    a tracer is active. Also the sweep's liveness pulse: each epoch sends
    a throttled live heartbeat (one global ``None`` check when no live
    emitter is installed) so monitored cells prove progress every epoch.
    """
    live.tick("epoch", epoch=int(epoch),
              loss=None if loss is None else float(loss))
    if not telemetry.enabled():
        return
    grad_norm = grad_global_norm(model) if model is not None else None
    telemetry.emit_event(
        "epoch",
        epoch=int(epoch),
        loss=None if loss is None else float(loss),
        valid_score=None if valid_score is None else float(valid_score),
        grad_norm=grad_norm,
        bad_epochs=stopper.bad_epochs if stopper is not None else None,
        best_score=(None if stopper is None or not np.isfinite(stopper.best_score)
                    else float(stopper.best_score)),
    )
    telemetry.inc_counter("train.epochs")
    if loss is not None:
        telemetry.observe("train.loss", float(loss))
    if valid_score is not None:
        telemetry.observe("train.valid_score", float(valid_score))
    if grad_norm is not None:
        telemetry.observe("train.grad_norm", grad_norm)
