"""Model checkpointing: portable .npz snapshots of trained parameters.

Benchmark sweeps train hundreds of models; checkpoints let the analysis
stages (response plots, t-SNE, degree bias) reuse trained parameters
without retraining, and make trained filters deployable artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..errors import TrainingError
from ..nn.module import Module

PathLike = Union[str, Path]

_METADATA_KEY = "__checkpoint_metadata__"


def save_checkpoint(model: Module, path: PathLike,
                    metadata: Optional[Dict] = None) -> None:
    """Write a model's parameters (and optional JSON metadata) to .npz."""
    state = model.state_dict()
    if _METADATA_KEY in state:
        raise TrainingError(f"parameter name {_METADATA_KEY!r} is reserved")
    payload = dict(state)
    payload[_METADATA_KEY] = np.frombuffer(
        json.dumps(metadata or {}).encode(), dtype=np.uint8)
    np.savez(Path(path), **payload)


def load_checkpoint(model: Module, path: PathLike) -> Dict:
    """Restore parameters saved by :func:`save_checkpoint`; returns metadata.

    The model must have the same architecture (same parameter names and
    shapes) as the one that was saved.
    """
    with np.load(Path(path)) as archive:
        stored = {name: archive[name] for name in archive.files}
    raw_metadata = stored.pop(_METADATA_KEY, None)
    own = dict(model.named_parameters())
    missing = set(own) - set(stored)
    unexpected = set(stored) - set(own)
    if missing or unexpected:
        raise TrainingError(
            f"checkpoint mismatch: missing {sorted(missing)}, "
            f"unexpected {sorted(unexpected)}"
        )
    for name, value in stored.items():
        if own[name].data.shape != value.shape:
            raise TrainingError(
                f"shape mismatch for {name}: model {own[name].data.shape} "
                f"vs checkpoint {value.shape}"
            )
    model.load_state_dict(stored)
    if raw_metadata is None:
        return {}
    return json.loads(raw_metadata.tobytes().decode())
