"""Hyperparameter search scheme (Table 4).

The paper fixes a universal configuration (K = 10, F = 64, one φ0/φ1
layer full-batch; no φ0 and two φ1 layers mini-batch; 500 epochs) and
tunes the remaining knobs per (filter, dataset): graph normalization ρ,
learning rates, and weight decays of the transform and filter groups, plus
each filter's own hyperparameters (α, β, ...).

:func:`random_search` draws configurations from those ranges (log-uniform
where the paper's ranges span decades) and keeps the best by validation
score; it is deliberately budgeted — the point of the benchmark is fair,
bounded tuning, not exhaustive optimization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import TrainingError
from .loop import TrainConfig

#: Table 4 universal grid (underlined values are the defaults used in the
#: main experiments).
UNIVERSAL_GRID = {
    "num_hops": [2, 4, 6, 8, 10, 12, 16, 20, 30],
    "hidden": [16, 32, 64, 128, 256],
    "phi0_layers_fb": [1, 2, 3],
    "phi1_layers_fb": [1, 2, 3],
    "phi0_layers_mb": [0],
    "phi1_layers_mb": [1, 2, 3],
}

UNIVERSAL_DEFAULTS = {
    "num_hops": 10,
    "hidden": 64,
    "phi0_layers_fb": 1,
    "phi1_layers_fb": 1,
    "phi0_layers_mb": 0,
    "phi1_layers_mb": 2,
}

#: Table 4 individual (per filter × dataset) continuous ranges.
INDIVIDUAL_RANGES = {
    "rho": (0.0, 1.0, "linear"),
    "lr": (1e-5, 0.5, "log"),
    "lr_filter": (1e-5, 0.5, "log"),
    "weight_decay": (1e-7, 1e-3, "log"),
    "weight_decay_filter": (1e-7, 1e-3, "log"),
}


@dataclass(frozen=True)
class SearchSpace:
    """Continuous ranges for the individually-tuned hyperparameters.

    ``filter_ranges`` adds per-filter knobs, e.g. ``{"alpha": (0.05, 0.95,
    "linear")}`` for PPR.
    """

    config_ranges: Dict[str, Tuple[float, float, str]]
    filter_ranges: Dict[str, Tuple[float, float, str]]

    @classmethod
    def default(cls, filter_ranges: Optional[Dict] = None) -> "SearchSpace":
        return cls(config_ranges=dict(INDIVIDUAL_RANGES),
                   filter_ranges=dict(filter_ranges or {}))


def _draw(rng: np.random.Generator, low: float, high: float, kind: str) -> float:
    if kind == "log":
        return float(math.exp(rng.uniform(math.log(low), math.log(high))))
    if kind == "linear":
        return float(rng.uniform(low, high))
    raise TrainingError(f"unknown range kind {kind!r}")


def sample_configuration(
    space: SearchSpace,
    base: TrainConfig,
    rng: np.random.Generator,
) -> Tuple[TrainConfig, Dict[str, float]]:
    """Draw one (TrainConfig, filter-hyperparameter) candidate."""
    config_updates = {
        name: _draw(rng, *bounds) for name, bounds in space.config_ranges.items()
    }
    filter_hp = {
        name: _draw(rng, *bounds) for name, bounds in space.filter_ranges.items()
    }
    return replace(base, **config_updates), filter_hp


def random_search(
    objective: Callable[[TrainConfig, Dict[str, float]], float],
    space: SearchSpace,
    base: TrainConfig,
    budget: int = 10,
    seed: int = 0,
) -> Tuple[TrainConfig, Dict[str, float], float, List[float]]:
    """Budgeted random search maximizing ``objective`` (validation score).

    Returns the best config, best filter hyperparameters, best score, and
    the score trace. The base configuration itself is always evaluated
    first, so search can only improve on the defaults.
    """
    if budget < 1:
        raise TrainingError(f"search budget must be >= 1, got {budget}")
    rng = np.random.default_rng(seed)
    best_config, best_hp = base, {}
    best_score = objective(base, {})
    trace = [best_score]
    for _ in range(budget - 1):
        candidate, filter_hp = sample_configuration(space, base, rng)
        score = objective(candidate, filter_hp)
        trace.append(score)
        if score > best_score:
            best_config, best_hp, best_score = candidate, filter_hp, score
    return best_config, best_hp, best_score, trace


#: Per-filter hyperparameter ranges, keyed by registry name.
FILTER_SEARCH_RANGES: Dict[str, Dict[str, Tuple[float, float, str]]] = {
    "ppr": {"alpha": (0.05, 0.95, "linear")},
    "hk": {"alpha": (0.1, 5.0, "log")},
    "gaussian": {"alpha": (0.1, 5.0, "log"), "beta": (-1.0, 1.0, "linear")},
    "jacobi": {"a": (-0.9, 2.0, "linear"), "b": (-0.9, 2.0, "linear")},
    "fagnn": {"beta": (0.0, 1.0, "linear")},
    "g2cn": {
        "alpha_low": (0.1, 5.0, "log"),
        "alpha_high": (0.1, 5.0, "log"),
        "beta_low": (0.0, 1.0, "linear"),
        "beta_high": (0.0, 1.0, "linear"),
    },
    "gnnlfhf": {
        "alpha_low": (0.05, 0.95, "linear"),
        "alpha_high": (0.05, 0.95, "linear"),
        "beta_low": (0.0, 0.5, "linear"),
        "beta_high": (0.1, 2.0, "log"),
    },
    "monomial_var": {"alpha": (0.05, 0.95, "linear")},
}
