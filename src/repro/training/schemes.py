"""The three learning schemes: full-batch, mini-batch, graph partition.

This module is the executable form of the paper's Figure 1:

- **Full-batch (FB)** — graph topology, features, and weights all live on
  the device; every epoch re-runs propagation inside the autodiff graph.
  Peak device memory grows with n and m, which is what OOMs past the
  million scale.
- **Mini-batch (MB)** — the spectral specialization: graph operations run
  once on CPU (precompute stage), the resulting O(nCF) channel tensor
  stays in host RAM, and training streams row batches to the device. The
  device footprint is independent of graph size.
- **Graph partition (GP)** — the model-agnostic fallback: BFS clusters are
  trained as independent subgraphs, bounding memory at the price of the
  severed cross-cluster edges.

Every trainer returns a :class:`~repro.training.loop.RunResult` with
per-stage timings, RAM / device peaks, and ``status="oom"`` when the
simulated device capacity is exceeded — the harness prints those as the
paper's ``(OOM)`` cells.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import telemetry
from ..autodiff import functional as F
from ..autodiff.tensor import Tensor, no_grad
from ..datasets.splits import Split
from ..errors import DeviceOOMError, TrainingError
from ..filters.base import SpectralFilter
from ..graph.graph import Graph
from ..graph.partition import bfs_partition, cut_edges
from ..models.decoupled import DecoupledModel, MiniBatchModel
from ..nn.module import Module
from ..runtime import plan
from ..runtime.device import DeviceModel, nbytes_of
from .loop import (
    EarlyStopper,
    RunResult,
    TrainConfig,
    build_optimizer,
    record_epoch_telemetry,
)
from .metrics import evaluate


def _parameters_bytes(model: Module) -> int:
    return sum(p.data.nbytes for p in model.parameters())


def _loss(logits: Tensor, labels: np.ndarray) -> Tensor:
    return F.cross_entropy(logits, labels)


class FullBatchTrainer:
    """Full-batch training of the decoupled architecture."""

    def __init__(self, device: Optional[DeviceModel] = None):
        self.device = device or DeviceModel(name="fb-device")

    def fit(self, graph: Graph, split: Split, filter_: SpectralFilter,
            config: TrainConfig) -> RunResult:
        result = RunResult(status="ok")
        profiler = result.profiler
        labels = graph.labels
        rng = config.rng()
        try:
            model = DecoupledModel(
                filter_,
                in_features=graph.num_features,
                out_features=graph.num_classes,
                hidden=config.hidden,
                phi0_layers=config.phi0_layers,
                phi1_layers=config.phi1_layers,
                dropout=config.dropout,
                rho=config.rho,
                backend=config.backend,
                rng=rng,
            )
            optimizer = build_optimizer(model, config)
            stopper = EarlyStopper(config.patience)

            # Residency: topology + features + all weights live on device.
            adjacency = graph.normalized_adjacency(config.rho)
            self.device.to_device(adjacency)
            self.device.to_device(graph.features)
            self.device.to_device(_parameters_bytes(model))
            profiler.record_ram("train", nbytes_of(adjacency) + graph.features.nbytes)

            features = Tensor(graph.features)
            for epoch in range(config.epochs):
                model.train()
                with profiler.stage("train", op_class="propagation"):
                    with telemetry.span("epoch", index=epoch), self.device.step():
                        with telemetry.span("forward"):
                            logits = model(graph, features)
                            loss = _loss(logits[split.train], labels[split.train])
                        model.zero_grad()
                        with telemetry.span("backward"):
                            loss.backward()
                        optimizer.step()
                        loss_value = float(loss.data)
                result.epochs_run = epoch + 1
                score, stop = None, False
                if (epoch + 1) % config.eval_every == 0:
                    score = self._evaluate(model, graph, features, split.valid,
                                            labels, config)
                    stop = stopper.update(score, model)
                record_epoch_telemetry(epoch, loss_value, score, stopper, model)
                if stop:
                    break

            stopper.restore(model)
            model.eval()
            with profiler.stage("inference", op_class="propagation"):
                with no_grad(), self.device.step():
                    logits = model(graph, features).data
            result.predictions = logits
            result.test_score = evaluate(config.metric, logits[split.test],
                                         labels[split.test])
            result.valid_score = max(stopper.best_score, -np.inf)
            result.filter_params = model.numpy_filter_params()
        except DeviceOOMError:
            result.status = "oom"
        result.device_peak_bytes = self.device.peak_bytes
        profiler.record_device("train", self.device.peak_bytes)
        result.ram_peak_bytes = profiler.peak_ram_bytes()
        return result

    def _evaluate(self, model, graph, features, index, labels,
                  config: TrainConfig) -> float:
        model.eval()
        with no_grad():
            with self.device.step():
                logits = model(graph, features).data
        return evaluate(config.metric, logits[index], labels[index])


class MiniBatchTrainer:
    """Decoupled mini-batch training over precomputed filter channels."""

    def __init__(self, device: Optional[DeviceModel] = None):
        self.device = device or DeviceModel(name="mb-device")

    def fit(self, graph: Graph, split: Split, filter_: SpectralFilter,
            config: TrainConfig) -> RunResult:
        result = RunResult(status="ok")
        profiler = result.profiler
        labels = graph.labels
        rng = config.rng()
        try:
            # Stage 1: CPU precompute — graph ops happen exactly once. The
            # propagation matrix is built here and reused for the RAM
            # accounting below instead of re-deriving it just to size it.
            # The basis planner joins an enclosing sweep scope when one is
            # active (cross-filter term sharing); otherwise the scope is
            # ephemeral and chains die with this fit.
            with profiler.stage("precompute", op_class="propagation"):
                propagation = graph.normalized_adjacency(config.rho)
                with plan.plan_scope():
                    channels = filter_.precompute(
                        graph, graph.features, rho=config.rho,
                        backend=config.backend)
            profiler.record_ram(
                "precompute",
                channels.nbytes + nbytes_of(propagation),
            )

            model = MiniBatchModel(
                filter_,
                in_features=graph.num_features,
                out_features=graph.num_classes,
                hidden=config.hidden,
                phi1_layers=max(config.phi1_layers, 1),
                dropout=config.dropout,
                rng=rng,
            )
            optimizer = build_optimizer(model, config)
            stopper = EarlyStopper(config.patience)
            self.device.to_device(_parameters_bytes(model))

            train_index = split.train.copy()
            for epoch in range(config.epochs):
                model.train()
                rng.shuffle(train_index)
                batch_losses = []
                with profiler.stage("train", op_class="transform"):
                    with telemetry.span("epoch", index=epoch):
                        for start in range(0, len(train_index), config.batch_size):
                            batch_index = train_index[start:start + config.batch_size]
                            with self.device.step():
                                batch = Tensor(channels[batch_index])
                                with telemetry.span("forward"):
                                    logits = model(batch)
                                    loss = _loss(logits, labels[batch_index])
                                model.zero_grad()
                                with telemetry.span("backward"):
                                    loss.backward()
                                optimizer.step()
                                batch_losses.append(float(loss.data))
                result.epochs_run = epoch + 1
                score, stop = None, False
                if (epoch + 1) % config.eval_every == 0:
                    score = self._evaluate(model, channels, split.valid, labels, config)
                    stop = stopper.update(score, model)
                record_epoch_telemetry(
                    epoch, float(np.mean(batch_losses)) if batch_losses else None,
                    score, stopper, model)
                if stop:
                    break

            stopper.restore(model)
            all_nodes = np.arange(graph.num_nodes)
            with profiler.stage("inference", op_class="transform"):
                logits = self._predict(model, channels, all_nodes, config)
            result.predictions = logits
            result.test_score = evaluate(config.metric, logits[split.test],
                                         labels[split.test])
            result.valid_score = max(stopper.best_score, -np.inf)
            result.filter_params = model.numpy_filter_params()
        except DeviceOOMError:
            result.status = "oom"
        result.device_peak_bytes = self.device.peak_bytes
        profiler.record_device("train", self.device.peak_bytes)
        result.ram_peak_bytes = profiler.peak_ram_bytes()
        return result

    def _predict(self, model, channels, index, config: TrainConfig) -> np.ndarray:
        model.eval()
        outputs: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(index), config.batch_size):
                batch_index = index[start:start + config.batch_size]
                with self.device.step():
                    batch = Tensor(channels[batch_index])
                    outputs.append(model(batch).data)
        return np.concatenate(outputs, axis=0)

    def _evaluate(self, model, channels, index, labels, config: TrainConfig) -> float:
        logits = self._predict(model, channels, index, config)
        return evaluate(config.metric, logits, labels[index])


class GraphPartitionTrainer:
    """Model-agnostic graph-partition training (the GP scheme of Table 2).

    Clusters are induced subgraphs; cross-cluster edges are severed, which
    is the expressiveness cost the paper attributes to this scheme. The
    severed count and its fraction of m are reported on the
    :class:`RunResult` (``cut_edges`` / ``cut_edge_fraction``) so accuracy
    deltas can be attributed to lost edges rather than optimization noise.

    Memory semantics match the paper's tables: exactly one cluster —
    its propagation operator plus its feature rows — is resident on the
    device per step (:meth:`DeviceModel.resident`), so GP OOMs iff the
    *largest* cluster exceeds capacity, never the whole graph. Cluster
    propagation flows through the autodiff spmm hooks, so under an active
    :func:`repro.runtime.blocked.blocked_scope` each per-cluster spmm is
    tiled against the blocked tier's RAM budget.
    """

    def __init__(self, num_parts: int = 4, device: Optional[DeviceModel] = None):
        if num_parts < 1:
            raise TrainingError(f"num_parts must be >= 1, got {num_parts}")
        self.num_parts = int(num_parts)
        self.device = device or DeviceModel(name="gp-device")

    def fit(self, graph: Graph, split: Split, filter_: SpectralFilter,
            config: TrainConfig) -> RunResult:
        result = RunResult(status="ok")
        profiler = result.profiler
        labels = graph.labels
        rng = config.rng()
        try:
            with profiler.stage("precompute", op_class="propagation"):
                parts = bfs_partition(graph, self.num_parts, rng=rng)
                subgraphs = [graph.subgraph(part) for part in parts]
                # Build each cluster operator up front: warms the subgraph
                # caches (train stage isn't charged for normalization) and
                # gives the residency accounting real operator sizes.
                operators = [sub.normalized_adjacency(config.rho)
                             for sub in subgraphs]
            severed = cut_edges(graph, parts)
            result.cut_edges = int(severed)
            result.cut_edge_fraction = severed / max(graph.num_edges, 1)
            result.num_parts = len(parts)
            train_mask = np.zeros(graph.num_nodes, dtype=bool)
            train_mask[split.train] = True

            model = DecoupledModel(
                filter_,
                in_features=graph.num_features,
                out_features=graph.num_classes,
                hidden=config.hidden,
                phi0_layers=config.phi0_layers,
                phi1_layers=config.phi1_layers,
                dropout=config.dropout,
                rho=config.rho,
                backend=config.backend,
                rng=rng,
            )
            optimizer = build_optimizer(model, config)
            stopper = EarlyStopper(config.patience)
            self.device.to_device(_parameters_bytes(model))
            largest = max(
                nbytes_of(op) + sub.features.nbytes
                for op, sub in zip(operators, subgraphs))
            profiler.record_ram("train", largest)

            for epoch in range(config.epochs):
                model.train()
                part_losses = []
                with profiler.stage("train", op_class="propagation"):
                    with telemetry.span("epoch", index=epoch):
                        for part, subgraph, operator in zip(
                                parts, subgraphs, operators):
                            local_train = np.flatnonzero(train_mask[part])
                            if local_train.size == 0:
                                continue
                            with self.device.resident(
                                    operator, subgraph.features), \
                                    self.device.step():
                                with telemetry.span("forward"):
                                    logits = model(subgraph)
                                    loss = _loss(logits[local_train],
                                                 labels[part][local_train])
                                model.zero_grad()
                                with telemetry.span("backward"):
                                    loss.backward()
                                optimizer.step()
                                part_losses.append(float(loss.data))
                result.epochs_run = epoch + 1
                score, stop = None, False
                if (epoch + 1) % config.eval_every == 0:
                    score = self._evaluate(model, parts, subgraphs, operators,
                                           split.valid, labels, config)
                    stop = stopper.update(score, model)
                record_epoch_telemetry(
                    epoch, float(np.mean(part_losses)) if part_losses else None,
                    score, stopper, model)
                if stop:
                    break

            stopper.restore(model)
            with profiler.stage("inference", op_class="propagation"):
                logits = self._predict(model, parts, subgraphs, operators,
                                       labels)
            result.predictions = logits
            result.test_score = evaluate(config.metric, logits[split.test],
                                         labels[split.test])
            result.valid_score = max(stopper.best_score, -np.inf)
            result.filter_params = model.numpy_filter_params()
        except DeviceOOMError:
            result.status = "oom"
        result.device_peak_bytes = self.device.peak_bytes
        profiler.record_device("train", self.device.peak_bytes)
        result.ram_peak_bytes = profiler.peak_ram_bytes()
        return result

    def _predict(self, model, parts, subgraphs, operators, labels) -> np.ndarray:
        model.eval()
        num_classes = int(labels.max()) + 1
        full_logits = np.zeros((len(labels), num_classes), dtype=np.float32)
        with no_grad():
            for part, subgraph, operator in zip(parts, subgraphs, operators):
                with self.device.resident(operator, subgraph.features), \
                        self.device.step():
                    full_logits[part] = model(subgraph).data
        return full_logits

    def _evaluate(self, model, parts, subgraphs, operators, index, labels,
                  config: TrainConfig) -> float:
        full_logits = self._predict(model, parts, subgraphs, operators, labels)
        return evaluate(config.metric, full_logits[index], labels[index])


SCHEMES = {
    "full_batch": FullBatchTrainer,
    "mini_batch": MiniBatchTrainer,
    "graph_partition": GraphPartitionTrainer,
}
