"""Text rendering of traces: top spans, per-epoch sparklines, counters.

Turns a list of trace events (from a :class:`~repro.telemetry.sinks.MemorySink`
buffer or a JSONL file reloaded with
:func:`~repro.telemetry.sinks.load_events`) into the compact terminal
report printed by ``python -m repro.bench --trace``. Kept free of imports
from :mod:`repro.bench` so the bench layer can build on it without cycles.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Unicode block sparkline of a numeric series, resampled to ``width``."""
    series = [float(v) for v in values if v is not None]
    if not series:
        return ""
    if len(series) > width:
        stride = len(series) / width
        series = [series[int(i * stride)] for i in range(width)]
    low, high = min(series), max(series)
    span = high - low
    if span <= 0:
        return SPARK_CHARS[0] * len(series)
    top = len(SPARK_CHARS) - 1
    return "".join(SPARK_CHARS[int((v - low) / span * top)] for v in series)


def _table(headers: List[str], rows: List[List[str]], title: str) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"-- {title} --"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _format_bytes(nbytes: float) -> str:
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GiB"


def aggregate_spans(events: Iterable[Mapping]) -> Dict[str, Dict]:
    """Fold span events into per-name totals, inclusive *and* exclusive.

    Inclusive values (``seconds``, ``alloc_bytes``, ``mem_bytes``) count
    everything that happened while a span was open, children included —
    the tracer attributes allocation to every open span. The exclusive
    view (``self_seconds``, ``self_alloc_bytes``, ``self_mem_bytes``)
    subtracts each span's direct children, attributing cost to the span
    that actually incurred it; summed over a trace, the exclusive values
    telescope back to the inclusive totals of the root spans (the
    property the tests assert). ``mem_peak_bytes`` — the allocation
    ledger's live high-water mark while the span was open — aggregates as
    a max, not a sum.

    Events missing optional fields (a trace written with telemetry only
    partially enabled) are tolerated: spans without a ``name`` are
    skipped, missing numeric fields count as zero, and spans without
    ``id``/``parent`` linkage fall back to self == inclusive.
    """
    spans = [e for e in events
             if e.get("type") == "span" and e.get("name") is not None]
    # Per-parent child sums, for the exclusive view.
    child_seconds: Dict[object, float] = {}
    child_bytes: Dict[object, float] = {}
    child_mem: Dict[object, float] = {}
    for event in spans:
        parent = event.get("parent")
        if parent is None:
            continue
        child_seconds[parent] = child_seconds.get(parent, 0.0) \
            + float(event.get("duration_s") or 0.0)
        child_bytes[parent] = child_bytes.get(parent, 0.0) \
            + float(event.get("alloc_bytes") or 0)
        child_mem[parent] = child_mem.get(parent, 0.0) \
            + float(event.get("mem_bytes") or 0)
    stats: Dict[str, Dict] = {}
    for event in spans:
        entry = stats.setdefault(event["name"], {
            "calls": 0, "seconds": 0.0, "max_seconds": 0.0,
            "self_seconds": 0.0, "alloc_bytes": 0, "self_alloc_bytes": 0,
            "ram_delta_bytes": 0, "mem_bytes": 0, "self_mem_bytes": 0,
            "mem_peak_bytes": 0,
        })
        duration = float(event.get("duration_s") or 0.0)
        alloc = float(event.get("alloc_bytes") or 0)
        mem = float(event.get("mem_bytes") or 0)
        span_id = event.get("id")
        entry["calls"] += 1
        entry["seconds"] += duration
        entry["max_seconds"] = max(entry["max_seconds"], duration)
        entry["self_seconds"] += duration - child_seconds.get(span_id, 0.0)
        entry["alloc_bytes"] += alloc
        entry["self_alloc_bytes"] += alloc - child_bytes.get(span_id, 0.0)
        entry["ram_delta_bytes"] += float(event.get("ram_delta_bytes") or 0)
        entry["mem_bytes"] += mem
        entry["self_mem_bytes"] += mem - child_mem.get(span_id, 0.0)
        entry["mem_peak_bytes"] = max(entry["mem_peak_bytes"],
                                      float(event.get("mem_peak_bytes") or 0))
    return stats


def render_top_spans(events: Iterable[Mapping], top: int = 10) -> str:
    """The hot list: span names ranked by *exclusive* (self) wall time."""
    stats = aggregate_spans(events)
    if not stats:
        return "-- top spans --\n(no spans recorded)"
    ranked = sorted(stats.items(), key=lambda kv: kv[1]["self_seconds"],
                    reverse=True)[:top]
    rows = []
    for name, entry in ranked:
        mean = entry["seconds"] / entry["calls"] if entry["calls"] else 0.0
        rows.append([
            name,
            str(entry["calls"]),
            _format_seconds(entry["seconds"]),
            _format_seconds(entry["self_seconds"]),
            _format_seconds(mean),
            _format_seconds(entry["max_seconds"]),
            _format_bytes(entry["alloc_bytes"]),
            _format_bytes(entry["self_alloc_bytes"]),
        ])
    return _table(["span", "calls", "total", "self", "mean", "max",
                   "alloc", "self-alloc"],
                  rows, f"top {len(rows)} spans by self time")


def epoch_series(events: Iterable[Mapping], field: str) -> List[float]:
    """Extract one numeric per-epoch series from ``epoch`` events."""
    return [event[field] for event in events
            if event.get("type") == "epoch" and event.get(field) is not None]


def render_epoch_table(events: Iterable[Mapping]) -> str:
    """Per-epoch metric sparklines (loss, validation score, grad norm)."""
    fields = ("loss", "valid_score", "grad_norm")
    rows = []
    for field in fields:
        series = epoch_series(events, field)
        if not series:
            continue
        rows.append([
            field,
            str(len(series)),
            f"{series[0]:.4g}",
            f"{series[-1]:.4g}",
            f"{min(series):.4g}",
            f"{max(series):.4g}",
            sparkline(series),
        ])
    if not rows:
        return "-- per-epoch metrics --\n(no epoch events recorded)"
    return _table(["metric", "epochs", "first", "last", "min", "max", "trend"],
                  rows, "per-epoch metrics")


def final_metrics(events: Iterable[Mapping]) -> Dict:
    """The last metrics snapshot embedded in a trace (``{}`` when absent).

    Tolerates partially-written metrics events (``metrics`` key missing or
    null, a non-mapping payload) by skipping them.
    """
    snapshot: Dict = {}
    for event in events:
        if event.get("type") == "metrics":
            payload = event.get("metrics")
            if isinstance(payload, Mapping):
                snapshot = dict(payload)
    return snapshot


def final_memory(events: Iterable[Mapping]) -> Dict:
    """The last allocation-ledger summary in a trace (``{}`` when absent).

    The ledger emits one ``{"type": "memory", "memory": {...}}`` event at
    telemetry shutdown (worker shards' summaries having been folded into
    it); runs recorded before the memory observatory existed simply have
    none.
    """
    summary: Dict = {}
    for event in events:
        if event.get("type") == "memory":
            payload = event.get("memory")
            if isinstance(payload, Mapping):
                summary = dict(payload)
    return summary


def render_memory(events: Iterable[Mapping], top: int = 5) -> str:
    """The memory section: ledger totals, peak attribution, top arrays.

    Renders the accounted live/peak/total bytes, where the high-water
    mark sat in the span tree and which op families held it, the largest
    single allocations, and the accounting-coverage view (ledger vs
    measured RSS, DeviceModel vs ledger when present).
    """
    mem = final_memory(events)
    if not mem:
        return "-- memory --\n(no allocation ledger recorded)"
    rows = [
        ["peak accounted", _format_bytes(mem.get("peak_bytes") or 0)],
        ["live at shutdown", _format_bytes(mem.get("live_bytes") or 0)],
        ["total allocated", _format_bytes(mem.get("total_alloc_bytes") or 0)
         + f"  ({mem.get('alloc_count') or 0:,} arrays)"],
        ["total freed", _format_bytes(mem.get("total_freed_bytes") or 0)
         + f"  ({mem.get('free_count') or 0:,} arrays)"],
        ["rss peak", _format_bytes(mem.get("rss_peak_bytes") or 0)],
    ]
    coverage = mem.get("coverage") or {}
    if coverage.get("ledger_vs_rss") is not None:
        rows.append(["ledger/rss coverage",
                     f"{coverage['ledger_vs_rss']:.1%}"])
    if mem.get("device_peak_bytes"):
        rows.append(["device peak",
                     _format_bytes(mem["device_peak_bytes"])])
    attribution = mem.get("peak_attribution") or {}
    if attribution.get("path") or attribution.get("op"):
        rows.append(["peak set by",
                     f"{attribution.get('op') or '?'} @ "
                     f"{attribution.get('path') or '(top)'}"])
    holders = attribution.get("live_by_path") or {}
    for path, nbytes in sorted(holders.items(),
                               key=lambda kv: -kv[1])[:top]:
        rows.append([f"  at peak: {path}", _format_bytes(nbytes)])
    sections = [_table(["memory", "value"], rows, "allocation ledger")]
    top_allocs = mem.get("top_allocations") or []
    if top_allocs:
        alloc_rows = [[_format_bytes(e.get("nbytes") or 0),
                       str(e.get("op") or "?"),
                       str(e.get("path") or "(top)")]
                      for e in top_allocs[:top]]
        sections.append(_table(["size", "op", "span path"], alloc_rows,
                               "largest allocations"))
    return "\n\n".join(sections)


def render_counters(events: Iterable[Mapping],
                    metrics: Optional[Mapping] = None) -> str:
    """Counter table from a metrics snapshot (explicit or in-trace)."""
    snapshot: Optional[Mapping] = metrics
    if snapshot is None:
        snapshot = final_metrics(events)
    counters = (snapshot or {}).get("counters") or {}
    if not isinstance(counters, Mapping) or not counters:
        return "-- op counters --\n(no counters recorded)"
    rows = [[str(name),
             f"{value:,.0f}" if isinstance(value, (int, float))
             and not isinstance(value, bool) else str(value)]
            for name, value in sorted(counters.items())]
    return _table(["counter", "value"], rows, "op counters")


def _numeric(value) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _format_signed_seconds(seconds: float) -> str:
    sign = "-" if seconds < 0 else "+"
    return sign + _format_seconds(abs(seconds))


def _format_signed_bytes(nbytes: float) -> str:
    sign = "-" if nbytes < 0 else "+"
    return sign + _format_bytes(abs(nbytes))


def render_run_diff(baseline_events: Sequence[Mapping],
                    candidate_events: Sequence[Mapping],
                    top: int = 12) -> str:
    """Cross-run trace diff: per-span and per-counter deltas.

    Aggregates both traces (:func:`aggregate_spans`, inclusive and
    exclusive), aligns spans by name and counters by name, and renders the
    deltas ranked by absolute self-time change — the view ``python -m
    repro.bench compare --registry`` prints when both runs kept traces.
    """
    base_stats = aggregate_spans(baseline_events)
    cand_stats = aggregate_spans(candidate_events)
    names = sorted(set(base_stats) | set(cand_stats),
                   key=lambda n: -abs(
                       cand_stats.get(n, {}).get("self_seconds", 0.0)
                       - base_stats.get(n, {}).get("self_seconds", 0.0)))
    span_rows = []
    for name in names[:top]:
        base = base_stats.get(name, {})
        cand = cand_stats.get(name, {})
        base_s = base.get("seconds", 0.0)
        cand_s = cand.get("seconds", 0.0)
        rel = (cand_s - base_s) / base_s if base_s else float("inf")
        span_rows.append([
            name,
            _format_seconds(base_s),
            _format_seconds(cand_s),
            f"{rel:+.1%}" if base_s else "new",
            _format_signed_seconds(cand.get("self_seconds", 0.0)
                                   - base.get("self_seconds", 0.0)),
            _format_signed_bytes(cand.get("alloc_bytes", 0)
                                 - base.get("alloc_bytes", 0)),
        ])
    sections = [
        _table(["span", "base", "cand", "Δtotal", "Δself", "Δalloc"],
               span_rows, "span diff (baseline → candidate)")
        if span_rows else "-- span diff --\n(no spans in either trace)",
    ]

    base_counters = final_metrics(baseline_events).get("counters") or {}
    cand_counters = final_metrics(candidate_events).get("counters") or {}
    counter_rows = []
    for name in sorted(set(base_counters) | set(cand_counters)):
        base_v = _numeric(base_counters.get(name))
        cand_v = _numeric(cand_counters.get(name))
        if base_v is None and cand_v is None:
            continue
        base_v = base_v or 0.0
        cand_v = cand_v or 0.0
        if base_v == cand_v:
            continue
        rel = (cand_v - base_v) / abs(base_v) if base_v else float("inf")
        counter_rows.append([
            name, f"{base_v:,.0f}", f"{cand_v:,.0f}",
            f"{cand_v - base_v:+,.0f}",
            f"{rel:+.1%}" if base_v else "new",
        ])
    if counter_rows:
        sections.append(_table(["counter", "base", "cand", "Δ", "rel"],
                               counter_rows, "counter diff"))
    else:
        sections.append("-- counter diff --\n(no counter changes)")
    return "\n\n".join(sections)


def render_trace_report(events: Sequence[Mapping],
                        metrics: Optional[Mapping] = None,
                        top: int = 10) -> str:
    """Full report: top spans, per-epoch sparklines, memory, op counters.

    The memory section appears only when the trace carries an allocation
    ledger summary, so reports over pre-observatory traces are unchanged.
    """
    sections = [
        render_top_spans(events, top=top),
        render_epoch_table(events),
    ]
    if final_memory(events):
        sections.append(render_memory(events))
    sections.append(render_counters(events, metrics=metrics))
    return "\n\n".join(sections)
