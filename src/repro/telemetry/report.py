"""Text rendering of traces: top spans, per-epoch sparklines, counters.

Turns a list of trace events (from a :class:`~repro.telemetry.sinks.MemorySink`
buffer or a JSONL file reloaded with
:func:`~repro.telemetry.sinks.load_events`) into the compact terminal
report printed by ``python -m repro.bench --trace``. Kept free of imports
from :mod:`repro.bench` so the bench layer can build on it without cycles.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Unicode block sparkline of a numeric series, resampled to ``width``."""
    series = [float(v) for v in values if v is not None]
    if not series:
        return ""
    if len(series) > width:
        stride = len(series) / width
        series = [series[int(i * stride)] for i in range(width)]
    low, high = min(series), max(series)
    span = high - low
    if span <= 0:
        return SPARK_CHARS[0] * len(series)
    top = len(SPARK_CHARS) - 1
    return "".join(SPARK_CHARS[int((v - low) / span * top)] for v in series)


def _table(headers: List[str], rows: List[List[str]], title: str) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"-- {title} --"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _format_bytes(nbytes: float) -> str:
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GiB"


def aggregate_spans(events: Iterable[Mapping]) -> Dict[str, Dict]:
    """Fold span events into per-name totals (calls, seconds, bytes)."""
    stats: Dict[str, Dict] = {}
    for event in events:
        if event.get("type") != "span":
            continue
        entry = stats.setdefault(event["name"], {
            "calls": 0, "seconds": 0.0, "max_seconds": 0.0,
            "alloc_bytes": 0, "ram_delta_bytes": 0,
        })
        entry["calls"] += 1
        entry["seconds"] += event.get("duration_s", 0.0)
        entry["max_seconds"] = max(entry["max_seconds"],
                                   event.get("duration_s", 0.0))
        entry["alloc_bytes"] += event.get("alloc_bytes", 0)
        entry["ram_delta_bytes"] += event.get("ram_delta_bytes", 0)
    return stats


def render_top_spans(events: Iterable[Mapping], top: int = 10) -> str:
    """The hot list: span names ranked by total wall time."""
    stats = aggregate_spans(events)
    if not stats:
        return "-- top spans --\n(no spans recorded)"
    ranked = sorted(stats.items(), key=lambda kv: kv[1]["seconds"],
                    reverse=True)[:top]
    rows = []
    for name, entry in ranked:
        mean = entry["seconds"] / entry["calls"] if entry["calls"] else 0.0
        rows.append([
            name,
            str(entry["calls"]),
            _format_seconds(entry["seconds"]),
            _format_seconds(mean),
            _format_seconds(entry["max_seconds"]),
            _format_bytes(entry["alloc_bytes"]),
        ])
    return _table(["span", "calls", "total", "mean", "max", "alloc"],
                  rows, f"top {len(rows)} spans by total time")


def epoch_series(events: Iterable[Mapping], field: str) -> List[float]:
    """Extract one numeric per-epoch series from ``epoch`` events."""
    return [event[field] for event in events
            if event.get("type") == "epoch" and event.get(field) is not None]


def render_epoch_table(events: Iterable[Mapping]) -> str:
    """Per-epoch metric sparklines (loss, validation score, grad norm)."""
    fields = ("loss", "valid_score", "grad_norm")
    rows = []
    for field in fields:
        series = epoch_series(events, field)
        if not series:
            continue
        rows.append([
            field,
            str(len(series)),
            f"{series[0]:.4g}",
            f"{series[-1]:.4g}",
            f"{min(series):.4g}",
            f"{max(series):.4g}",
            sparkline(series),
        ])
    if not rows:
        return "-- per-epoch metrics --\n(no epoch events recorded)"
    return _table(["metric", "epochs", "first", "last", "min", "max", "trend"],
                  rows, "per-epoch metrics")


def render_counters(events: Iterable[Mapping],
                    metrics: Optional[Mapping] = None) -> str:
    """Counter table from a metrics snapshot (explicit or in-trace)."""
    snapshot: Optional[Mapping] = metrics
    if snapshot is None:
        for event in events:
            if event.get("type") == "metrics":
                snapshot = event.get("metrics", {})
    counters = (snapshot or {}).get("counters", {})
    if not counters:
        return "-- op counters --\n(no counters recorded)"
    rows = [[name, f"{value:,.0f}" if isinstance(value, (int, float)) else str(value)]
            for name, value in sorted(counters.items())]
    return _table(["counter", "value"], rows, "op counters")


def render_trace_report(events: Sequence[Mapping],
                        metrics: Optional[Mapping] = None,
                        top: int = 10) -> str:
    """Full report: top spans + per-epoch sparklines + op counters."""
    sections = [
        render_top_spans(events, top=top),
        render_epoch_table(events),
        render_counters(events, metrics=metrics),
    ]
    return "\n\n".join(sections)
