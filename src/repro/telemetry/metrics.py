"""Counters, gauges, and streaming histograms for op- and epoch-level data.

The registry is the numeric side of telemetry: op hooks in
:mod:`repro.autodiff` feed FLOP/byte counters, the device model feeds peak
gauges, and the training loop feeds loss/score histograms. Everything is
designed for cheap unlocked reads and locked writes, and for a plain-dict
:meth:`MetricsRegistry.snapshot` that serializes into the trace.

The histogram keeps a *deterministic decimating reservoir*: once the
sample buffer fills, every other sample is dropped and the sampling stride
doubles. Quantiles stay representative for arbitrarily long streams
without unbounded memory and without randomness (reproducible traces).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple


class Counter:
    """Monotonically increasing count (calls, FLOPs, bytes)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value plus the maximum ever seen (peaks)."""

    __slots__ = ("name", "value", "max_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self.max_value: float = float("-inf")
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            if value > self.max_value:
                self.max_value = value


class Histogram:
    """Streaming distribution summary: count/mean plus p50/p95/max.

    Parameters
    ----------
    max_samples:
        Reservoir capacity. When full, the buffer is decimated (every
        second sample kept) and the keep-stride doubles, so memory stays
        bounded while the kept samples remain evenly spread over the
        stream.
    """

    __slots__ = ("name", "count", "total", "min_value", "max_value",
                 "_samples", "_stride", "_lock", "max_samples")

    def __init__(self, name: str, max_samples: int = 1024):
        self.name = name
        self.max_samples = int(max_samples)
        self.count = 0
        self.total = 0.0
        self.min_value = float("inf")
        self.max_value = float("-inf")
        self._samples: List[float] = []
        self._stride = 1
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min_value:
                self.min_value = value
            if value > self.max_value:
                self.max_value = value
            if (self.count - 1) % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) >= self.max_samples:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the kept samples."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        if len(samples) == 1:
            return samples[0]
        position = q * (len(samples) - 1)
        low = int(position)
        high = min(low + 1, len(samples) - 1)
        fraction = position - low
        return samples[low] * (1.0 - fraction) + samples[high] * fraction

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "max": self.max_value if self.count else 0.0,
        }

    def _weighted_samples(self) -> List[Tuple[float, float]]:
        """Kept samples with their decimation weight (the current stride)."""
        with self._lock:
            return [(value, float(self._stride)) for value in self._samples]

    def merge(self, other: "Histogram") -> "Histogram":
        """Combine two streaming histograms (t-digest-style, deterministic).

        Exact fields (count, total/mean, min, max) add exactly. The sample
        reservoirs are combined as *weighted* points — each kept sample
        stands for ``stride`` observations — sorted by value and compressed
        into equal-mass centroids (weighted bucket means) so the result
        fits the reservoir bound again; the endpoints are then pinned to
        the exactly-tracked min/max so extreme quantiles stay exact even
        when decimation dropped the extreme observations. The procedure
        has no randomness and sorts by value, so ``a.merge(b)`` and
        ``b.merge(a)`` produce identical summaries — the property
        multi-process runs rely on to combine shards in any arrival order.
        """
        merged = Histogram(self.name,
                           max_samples=max(self.max_samples,
                                           other.max_samples))
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged.min_value = min(self.min_value, other.min_value)
        merged.max_value = max(self.max_value, other.max_value)

        weighted = sorted(self._weighted_samples()
                          + other._weighted_samples())
        if not weighted:
            return merged
        # Future observes keep decimating sensibly from the merged state.
        merged._stride = max(self._stride, other._stride)
        capacity = merged.max_samples - 1
        if len(weighted) <= capacity:
            merged._samples = merged._pin_extremes(
                [value for value, _ in weighted])
            return merged
        # Equal-mass compression: walk the sorted weighted points, cutting
        # a centroid every total/capacity of mass (t-digest with a uniform
        # scale function), then pin the endpoints so extreme quantiles
        # still reach the kept extremes.
        total_weight = sum(weight for _, weight in weighted)
        mass_per_centroid = total_weight / capacity
        centroids: List[float] = []
        bucket_weight = 0.0
        bucket_sum = 0.0
        for value, weight in weighted:
            bucket_weight += weight
            bucket_sum += value * weight
            if bucket_weight >= mass_per_centroid:
                centroids.append(bucket_sum / bucket_weight)
                bucket_weight = 0.0
                bucket_sum = 0.0
        if bucket_weight > 0:
            centroids.append(bucket_sum / bucket_weight)
        merged._samples = merged._pin_extremes(centroids)
        return merged

    def _pin_extremes(self, samples: List[float]) -> List[float]:
        """Clamp a sorted sample list's endpoints to the exact min/max."""
        if len(samples) >= 2:
            samples[0] = self.min_value
            samples[-1] = self.max_value
        return samples

    def to_state(self) -> Dict:
        """Full serializable state (reservoir included, unlike ``summary``).

        The lossless wire format worker processes use to ship their
        histogram shards to the sweep parent, where
        :meth:`from_state` rebuilds an equivalent histogram for
        :meth:`merge`.
        """
        with self._lock:
            return {
                "name": self.name,
                "max_samples": self.max_samples,
                "count": self.count,
                "total": self.total,
                "min": self.min_value,
                "max": self.max_value,
                "samples": list(self._samples),
                "stride": self._stride,
            }

    @classmethod
    def from_state(cls, state: Dict) -> "Histogram":
        """Rebuild a histogram from :meth:`to_state` output."""
        histogram = cls(state["name"],
                        max_samples=int(state.get("max_samples", 1024)))
        histogram.count = int(state.get("count", 0))
        histogram.total = float(state.get("total", 0.0))
        histogram.min_value = float(state.get("min", float("inf")))
        histogram.max_value = float(state.get("max", float("-inf")))
        histogram._samples = [float(v) for v in state.get("samples", ())]
        histogram._stride = max(1, int(state.get("stride", 1)))
        return histogram


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges, and histograms."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, max_samples: int = 1024) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, max_samples)
        return metric

    def get_counter(self, name: str) -> Optional[Counter]:
        return self._counters.get(name)

    def counter_values(self) -> Dict[str, float]:
        """Point-in-time ``name -> value`` read of every counter.

        Unlocked reads (counter values are single attributes), sorted for
        stable output — the cheap snapshot the live heartbeat path diffs
        to report per-tick counter deltas.
        """
        return {name: counter.value
                for name, counter in sorted(self._counters.items())}

    def gauge_values(self) -> Dict[str, Dict[str, float]]:
        """Point-in-time ``name -> {"value", "max"}`` read of every gauge.

        The gauge counterpart of :meth:`counter_values` — how the memory
        observatory (:func:`repro.telemetry.memory.memory_block`) picks up
        ``device.*.peak_bytes`` high-water marks for its accounting
        coverage ratios.
        """
        return {name: {"value": gauge.value, "max": gauge.max_value}
                for name, gauge in sorted(self._gauges.items())}

    def merge_from(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry (e.g. a worker process's) into this one.

        Counters add, gauges keep the other shard's last value and the max
        of both peaks, histograms combine via :meth:`Histogram.merge`.
        Returns ``self`` for chaining over many shards.
        """
        for name, counter in sorted(other._counters.items()):
            self.counter(name).inc(counter.value)
        for name, gauge in sorted(other._gauges.items()):
            ours = self.gauge(name)
            if gauge.max_value > ours.max_value:
                ours.set(gauge.max_value)
            ours.set(gauge.value)
        for name, histogram in sorted(other._histograms.items()):
            with self._lock:
                mine = self._histograms.get(name)
                if mine is None:
                    mine = self._histograms[name] = Histogram(
                        name, histogram.max_samples)
                self._histograms[name] = mine.merge(histogram)
        return self

    def to_state(self) -> Dict[str, Dict]:
        """Lossless serializable state of every metric (cf. ``snapshot``).

        Unlike :meth:`snapshot` — a human/JSON-facing summary — the state
        keeps histogram reservoirs and strides, so
        ``MetricsRegistry.from_state(reg.to_state())`` yields a registry
        that merges (:meth:`merge_from`) exactly like the original. This
        is how worker processes ship their shards across the result pipe:
        locks make the registry itself unpicklable, its state is plain
        data.
        """
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: {"value": g.value, "max": g.max_value}
                       for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.to_state()
                           for n, h in sorted(self._histograms.items())},
        }

    @classmethod
    def from_state(cls, state: Dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_state` output."""
        registry = cls()
        for name, value in (state.get("counters") or {}).items():
            registry.counter(name).value = value
        for name, payload in (state.get("gauges") or {}).items():
            gauge = registry.gauge(name)
            gauge.value = payload.get("value", 0.0)
            gauge.max_value = payload.get("max", float("-inf"))
        for name, payload in (state.get("histograms") or {}).items():
            registry._histograms[name] = Histogram.from_state(payload)
        return registry

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict view of every metric, ready for JSON serialization."""
        out: Dict[str, Dict] = {}
        if self._counters:
            out["counters"] = {n: c.value for n, c in sorted(self._counters.items())}
        if self._gauges:
            out["gauges"] = {
                n: {"value": g.value, "max": g.max_value}
                for n, g in sorted(self._gauges.items())
            }
        if self._histograms:
            out["histograms"] = {
                n: h.summary() for n, h in sorted(self._histograms.items())
            }
        return out
