"""Hierarchical span tracing: the timeline backbone of telemetry.

A *span* is one timed region of the pipeline — a precompute stage, one
training epoch, a single forward pass — opened as a context manager and
nested freely. Each closed span becomes one event on the run's sink,
carrying wall time, parent linkage, the bytes the autodiff engine
allocated while it was open, the signed change in current host RSS across
it (see :mod:`repro.telemetry.rss`), and — when the allocation ledger is
installed — the ledger-accounted bytes and live-memory high-water mark.
The paper's stage tables (Figure 2, Tables 9–11) are aggregations of
exactly these records; :class:`repro.runtime.profiler.StageProfiler` can
be rebuilt as a view over a span stream via ``StageProfiler.from_events``.

Overhead discipline: when telemetry is disabled (no tracer configured),
callers receive the shared :data:`NOOP_SPAN` singleton whose enter/exit do
nothing — the hot path pays one ``None`` check and no allocation.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional

from .metrics import MetricsRegistry
from .rss import current_rss_bytes
from .sinks import EventSink, NullSink


class _NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


#: The singleton no-op span; identity-comparable in tests.
NOOP_SPAN = _NoopSpan()


class Span:
    """One open (then closed) timed region.

    Spans are created by :meth:`Tracer.span`, never directly. While open
    they sit on the per-thread span stack; on exit they are serialized to
    the tracer's sink as a ``{"type": "span", ...}`` event.
    """

    __slots__ = ("tracer", "name", "span_id", "parent_id", "depth", "attrs",
                 "start_s", "duration_s", "alloc_bytes", "ram_delta_bytes",
                 "mem_bytes", "mem_peak_bytes", "_rss_at_open", "_thread")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], depth: int, attrs: Dict):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attrs = attrs
        self.start_s = 0.0
        self.duration_s = 0.0
        self.alloc_bytes = 0
        self.ram_delta_bytes = 0
        #: Ledger-accounted engine allocations while open (inclusive; fed
        #: by the allocation-ledger hook, zero when no ledger installed).
        self.mem_bytes = 0
        #: High-water mark of the ledger's live bytes while open.
        self.mem_peak_bytes = 0
        self._rss_at_open = 0
        self._thread = ""

    def set(self, **attrs) -> "Span":
        """Attach attributes to an open span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._thread = threading.current_thread().name
        self.tracer._push(self)
        self._rss_at_open = current_rss_bytes()
        self.start_s = time.perf_counter() - self.tracer.epoch_s
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self.tracer.epoch_s - self.start_s
        # Signed current-RSS delta (see repro.telemetry.rss): negative when
        # the span net-freed resident memory. Historically this was the
        # growth of the monotone process peak, which reported 0 for every
        # span after the high-water mark.
        self.ram_delta_bytes = current_rss_bytes() - self._rss_at_open
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._pop(self)
        return False

    def to_event(self) -> Dict:
        """Serializable record of a closed span."""
        return {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "thread": self._thread,
            "t_start_s": round(self.start_s, 9),
            "duration_s": self.duration_s,
            "alloc_bytes": self.alloc_bytes,
            "ram_delta_bytes": self.ram_delta_bytes,
            "mem_bytes": self.mem_bytes,
            "mem_peak_bytes": self.mem_peak_bytes,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Thread-safe hierarchical span collector feeding one event sink.

    Parameters
    ----------
    sink:
        Destination for closed-span and free-form events
        (:class:`~repro.telemetry.sinks.MemorySink`,
        :class:`~repro.telemetry.sinks.JsonlSink`, ...).
    metrics:
        Registry receiving per-span duration histograms; a fresh registry
        is created when omitted.
    """

    def __init__(self, sink: Optional[EventSink] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.sink: EventSink = sink or NullSink()
        self.metrics = metrics or MetricsRegistry()
        self.epoch_s = time.perf_counter()
        #: Wall-clock time of the tracer epoch: every span's ``t_start_s``
        #: is relative to this instant, which is what lets the Chrome
        #: trace exporter place spans on the same timeline as the live
        #: events' wall-clock stamps.
        self.wall_epoch = time.time()
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs) -> Span:
        """Create a span ready to be entered (``with tracer.span("x"):``)."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        return Span(
            self, name, next(self._ids),
            parent.span_id if parent else None,
            len(stack), attrs,
        )

    def _push(self, span: Span) -> None:
        # Re-derive linkage at entry time: the span may be entered later
        # (or on a different thread) than it was created.
        stack = self._stack()
        parent = stack[-1] if stack else None
        span.parent_id = parent.span_id if parent else None
        span.depth = len(stack)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        while stack and stack[-1] is not span:  # tolerate mis-nesting
            stack.pop()
        if stack:
            stack.pop()
        self.sink.emit(span.to_event())
        self.metrics.histogram(f"span.{span.name}.seconds").observe(span.duration_s)

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def next_span_id(self) -> int:
        """Reserve a fresh span id (worker-shard events are re-identified
        with parent-unique ids when folded into this tracer's stream)."""
        return next(self._ids)

    # ------------------------------------------------------------------
    # attribution feeds
    # ------------------------------------------------------------------
    def add_alloc_bytes(self, nbytes: int) -> None:
        """Attribute engine-allocated bytes to every open span (inclusive)."""
        for span in self._stack():
            span.alloc_bytes += nbytes

    def add_mem_bytes(self, nbytes: int, live_bytes: int) -> None:
        """Attribute one ledger-accounted allocation to every open span.

        ``mem_bytes`` accumulates inclusively (every open span sees the
        allocation, like :meth:`add_alloc_bytes`), so the exclusive view
        computed by :func:`repro.telemetry.report.aggregate_spans`
        telescopes back to the root spans' inclusive totals.
        ``mem_peak_bytes`` tracks the ledger's live high-water mark while
        the span was open.
        """
        for span in self._stack():
            span.mem_bytes += nbytes
            if live_bytes > span.mem_peak_bytes:
                span.mem_peak_bytes = live_bytes

    def current_path(self) -> str:
        """The open span-tree path on this thread (``"a/b/c"``; ``""`` at
        top level) — the allocation ledger's attribution key."""
        return "/".join(span.name for span in self._stack())

    def emit_event(self, event_type: str, **fields) -> None:
        """Record a free-form event tagged with the current span context."""
        current = self.current_span()
        event = {"type": event_type, "span": current.span_id if current else None}
        event.update(fields)
        self.sink.emit(event)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        """Emit a final metrics snapshot and close the sink."""
        snapshot = self.metrics.snapshot()
        if snapshot:
            self.sink.emit({"type": "metrics", "metrics": snapshot})
        self.sink.close()
