"""Event sinks: where closed spans and metric events go.

Sinks receive plain-dict events from the tracer. :class:`MemorySink`
buffers them for in-process reporting and tests, :class:`JsonlSink`
streams them to disk as one JSON object per line (the trace artifact next
to every benchmark result), and :class:`TeeSink` fans one stream out to
both. :class:`NullSink` swallows events for fully headless runs.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, List, Sequence, Union

PathLike = Union[str, Path]


class EventSink:
    """Interface: ``emit`` per event, ``flush``/``close`` at teardown."""

    def emit(self, event: Dict) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        self.flush()


class NullSink(EventSink):
    """Discard everything (telemetry configured but unobserved)."""

    def emit(self, event: Dict) -> None:
        pass


class MemorySink(EventSink):
    """Buffer events in order; the in-process view used by reports/tests."""

    def __init__(self):
        self.events: List[Dict] = []
        self._lock = threading.Lock()

    def emit(self, event: Dict) -> None:
        with self._lock:
            self.events.append(event)


class JsonlSink(EventSink):
    """Append events to a JSONL file, one compact object per line.

    The file is opened eagerly so a crashed run still leaves a partial
    trace; writes are locked for thread safety.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self.path.open("w", encoding="utf-8")
        self._lock = threading.Lock()

    def emit(self, event: Dict) -> None:
        line = json.dumps(event, separators=(",", ":"), sort_keys=True,
                          default=_json_default)
        with self._lock:
            if not self._file.closed:
                self._file.write(line + "\n")

    def flush(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()


class TeeSink(EventSink):
    """Fan every event out to several child sinks (memory + file)."""

    def __init__(self, *sinks: EventSink):
        self.sinks: Sequence[EventSink] = tuple(sinks)

    def emit(self, event: Dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def _json_default(value):
    """Serialize numpy scalars and anything else with a float/str view.

    Numpy scalars (and 0-d arrays) unwrap via ``.item()`` so fractional
    values keep their fraction — the previous int-first cast truncated
    ``float32(0.5)`` to ``0`` in the trace. Everything else falls back to
    an int/float view when it has one, else ``str``.
    """
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "ndim", None) in (None, 0):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    for cast in (float, int):
        try:
            return cast(value)
        except (TypeError, ValueError):
            continue
    return str(value)


def load_events(path: PathLike) -> List[Dict]:
    """Read a JSONL trace back into a list of event dicts.

    A killed writer (timed-out worker, crashed run) legitimately leaves a
    torn final line, so an undecodable *tail* is silently dropped — the
    events before it are intact and loadable. An undecodable line in the
    middle of the file is real corruption and still raises.
    """
    raw: List[str] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                raw.append(line)
    events: List[Dict] = []
    for index, line in enumerate(raw):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(raw) - 1:
                break  # torn tail of an interrupted writer
            raise
    return events
