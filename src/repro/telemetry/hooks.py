"""Bridging telemetry into the autodiff engine's hook slots.

:mod:`repro.autodiff.tensor` exposes two hook surfaces:

- ``set_op_hook`` — a single process-wide callback receiving
  ``(op, flops, nbytes)`` for every dense matmul, sparse propagation, and
  elementwise op the engine executes. Installing telemetry routes those
  into FLOP/byte/call counters on the active registry and attributes the
  bytes to every open span, which is how traces show *where* the
  arithmetic happened.
- ``add_allocation_hook`` / ``remove_allocation_hook`` — multi-subscriber
  dispatch of ``(nbytes, array, op)`` for every array the engine
  materializes. Telemetry subscribes the allocation ledger
  (:class:`repro.telemetry.memory.AllocationLedger`) here, tagging each
  allocation with the current span-tree path and feeding the per-span
  ``mem_bytes`` / ``mem_peak_bytes`` columns — composing with (never
  displacing) the :class:`repro.runtime.device.DeviceModel` step hook on
  the same dispatch.
"""

from __future__ import annotations

from typing import Optional

from .memory import TOP_PATH, AllocationLedger
from .spans import Tracer


def install_op_hooks(tracer: Tracer) -> None:
    """Point the engine's op hook at ``tracer``'s metrics registry."""
    from ..autodiff import tensor as tensor_mod

    metrics = tracer.metrics

    def op_hook(op: str, flops: int, nbytes: int) -> None:
        metrics.counter(f"ops.{op}.calls").inc()
        metrics.counter(f"ops.{op}.flops").inc(flops)
        metrics.counter(f"ops.{op}.bytes").inc(nbytes)
        tracer.add_alloc_bytes(nbytes)

    tensor_mod.set_op_hook(op_hook)


def uninstall_op_hooks() -> None:
    """Detach telemetry from the engine (no-op when nothing installed)."""
    from ..autodiff import tensor as tensor_mod

    tensor_mod.set_op_hook(None)


#: The allocation hook telemetry currently has subscribed, so uninstall
#: removes exactly what install added (and nothing anyone else added).
_alloc_hook = None


def install_alloc_hooks(tracer: Tracer, ledger: AllocationLedger) -> None:
    """Subscribe ``ledger`` to the engine's allocation dispatch.

    Every engine allocation is accounted under the current span-tree path
    (:meth:`Tracer.current_path`) and attributed inclusively to the open
    spans (:meth:`Tracer.add_mem_bytes`). Replaces any hook a previous
    install left behind; other subscribers (e.g. a ``DeviceModel.step``)
    are untouched.
    """
    global _alloc_hook
    from ..autodiff import tensor as tensor_mod

    if _alloc_hook is not None:
        tensor_mod.remove_allocation_hook(_alloc_hook)

    def alloc_hook(nbytes: int, array, op: str) -> None:
        path = tracer.current_path() or TOP_PATH
        ledger.on_alloc(nbytes, array, op, path)
        tracer.add_mem_bytes(nbytes, ledger.live_bytes)

    _alloc_hook = alloc_hook
    tensor_mod.add_allocation_hook(alloc_hook)


def uninstall_alloc_hooks() -> None:
    """Unsubscribe telemetry's allocation hook (no-op when absent)."""
    global _alloc_hook
    from ..autodiff import tensor as tensor_mod

    if _alloc_hook is not None:
        tensor_mod.remove_allocation_hook(_alloc_hook)
        _alloc_hook = None


def installed_alloc_hook() -> Optional[object]:
    """The currently-subscribed telemetry allocation hook (tests/debug)."""
    return _alloc_hook
