"""Bridging telemetry into the autodiff engine's op-hook slot.

:mod:`repro.autodiff.tensor` exposes ``set_op_hook`` in the same style as
its ``set_allocation_hook``: a single process-wide callback receiving
``(op, flops, nbytes)`` for every dense matmul and sparse propagation the
engine executes. Installing telemetry routes those into FLOP/byte/call
counters on the active registry and attributes the bytes to every open
span, which is how traces show *where* the arithmetic happened.
"""

from __future__ import annotations

from .spans import Tracer


def install_op_hooks(tracer: Tracer) -> None:
    """Point the engine's op hook at ``tracer``'s metrics registry."""
    from ..autodiff import tensor as tensor_mod

    metrics = tracer.metrics

    def op_hook(op: str, flops: int, nbytes: int) -> None:
        metrics.counter(f"ops.{op}.calls").inc()
        metrics.counter(f"ops.{op}.flops").inc(flops)
        metrics.counter(f"ops.{op}.bytes").inc(nbytes)
        tracer.add_alloc_bytes(nbytes)

    tensor_mod.set_op_hook(op_hook)


def uninstall_op_hooks() -> None:
    """Detach telemetry from the engine (no-op when nothing installed)."""
    from ..autodiff import tensor as tensor_mod

    tensor_mod.set_op_hook(None)
