"""Allocation ledger: byte-exact live-memory accounting with attribution.

The paper's memory axis (Tables 5/6 report RAM/GPU peaks and OOM cells)
needs more than a sampled RSS curve: it needs to know *which stage, op
family, and tensor* held the bytes at the high-water mark. This module is
that instrument. An :class:`AllocationLedger` subscribes to the autodiff
engine's multi-hook allocation dispatch
(:func:`repro.autodiff.tensor.add_allocation_hook`) and tracks:

- **Live bytes** — every array the engine materializes increments the
  ledger; a ``weakref.finalize`` registered on the array decrements it
  when the array is garbage-collected, so ``live_bytes`` is the accounted
  resident set of engine-allocated memory at any instant (views over a
  shared buffer count fully, like the :class:`~repro.runtime.device.
  DeviceModel` activation accounting they mirror).
- **Peak attribution** — on every new high-water mark the ledger snapshots
  the live bytes held per span-tree path and per op family, plus the
  path/op of the allocation that set the peak. Combined with the
  per-span inclusive/exclusive ``mem_bytes`` columns the tracer keeps,
  this answers "what was resident when memory peaked, and who put it
  there".
- **Top-N largest allocations** — a bounded ranking of the biggest single
  arrays ever allocated, with their op and span path.
- **Timeline samples** — an optional throttled, bounded ``(wall_t,
  live_bytes)`` series (``--mem-trace``) that the Chrome trace exporter
  renders as a live-bytes counter track alongside the sampled RSS track,
  so Perfetto shows accounted vs measured memory on one timeline.

Determinism discipline: allocation *totals* (``total_alloc_bytes``,
``alloc_count``, ``alloc_by_op``) are functions of the executed code path
only, which is what lets pooled worker shards fold into the parent ledger
(:meth:`AllocationLedger.merge_summary`, driven by
:func:`repro.telemetry.fold_shard`) with serial totals equal to pooled
totals. Free-side quantities (``live_bytes``, ``peak_bytes``) depend on
garbage-collection timing and process-lifetime caches and are reported,
not byte-identity-gated. Nothing here lands in result payloads or in
:func:`repro.bench.io.deterministic_counters` — the ledger is
observability, never payload.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Callable, Dict, List, Mapping, Optional

from .rss import current_rss_bytes, peak_rss_bytes

#: Schema tag stamped into every ledger summary (the ``memory`` event and
#: the registry record's ``memory`` block).
MEMORY_SCHEMA = "repro.telemetry.memory/v1"

#: Span path used for allocations made outside any open span.
TOP_PATH = "(top)"


class AllocationLedger:
    """Live-bytes ledger over the autodiff engine's allocation stream.

    Parameters
    ----------
    top_n:
        How many of the largest single allocations to rank.
    sample:
        Record the throttled ``(wall_t, live_bytes)`` timeline (the
        ``--mem-trace`` Chrome counter track). Off by default: the
        summary stays a handful of scalars and small dicts.
    sample_interval_s:
        Minimum seconds between timeline samples.
    max_samples:
        Timeline bound; when reached the series is decimated (every
        second sample dropped) and the interval doubled, so arbitrarily
        long runs keep a bounded, coarsening timeline.
    clock:
        Wall-clock source for samples (overridable in tests).
    """

    def __init__(self, top_n: int = 8, sample: bool = False,
                 sample_interval_s: float = 0.05, max_samples: int = 2048,
                 clock: Callable[[], float] = time.time):
        # Reentrant: the cyclic GC can run a finalizer (_on_free) in the
        # middle of on_alloc's own critical section on the same thread.
        self._lock = threading.RLock()
        self._clock = clock
        self.top_n = int(top_n)
        self.sample = bool(sample)
        self.sample_interval_s = float(sample_interval_s)
        self.max_samples = int(max_samples)
        self.closed = False

        self.live_bytes = 0
        self.peak_bytes = 0
        self.total_alloc_bytes = 0
        self.total_freed_bytes = 0
        self.alloc_count = 0
        self.free_count = 0
        #: Total bytes ever allocated per op family (schedule-invariant).
        self.alloc_by_op: Dict[str, int] = {}
        #: Currently-live bytes per span path / op family.
        self.live_by_path: Dict[str, int] = {}
        self.live_by_op: Dict[str, int] = {}
        #: Snapshots taken at the last new high-water mark.
        self.peak_path = ""
        self.peak_op = ""
        self.peak_by_path: Dict[str, int] = {}
        self.peak_by_op: Dict[str, int] = {}
        #: Largest single allocations ever seen, descending by size.
        self.top_allocations: List[Dict] = []
        #: Throttled ``[wall_t, live_bytes]`` timeline (when sampling).
        self.samples: List[List[float]] = []
        self._last_sample_t: Optional[float] = None

    # ------------------------------------------------------------------
    # allocation stream
    # ------------------------------------------------------------------
    def on_alloc(self, nbytes: int, array=None, op: str = "leaf",
                 path: str = TOP_PATH) -> None:
        """Account one engine allocation (the hook-side entry point)."""
        nbytes = int(nbytes)
        with self._lock:
            self.live_bytes += nbytes
            self.total_alloc_bytes += nbytes
            self.alloc_count += 1
            self.alloc_by_op[op] = self.alloc_by_op.get(op, 0) + nbytes
            self.live_by_path[path] = self.live_by_path.get(path, 0) + nbytes
            self.live_by_op[op] = self.live_by_op.get(op, 0) + nbytes
            if self.live_bytes > self.peak_bytes:
                self.peak_bytes = self.live_bytes
                self.peak_path = path
                self.peak_op = op
                self.peak_by_path = dict(self.live_by_path)
                self.peak_by_op = dict(self.live_by_op)
            self._rank(nbytes, op, path)
            if self.sample:
                self._maybe_sample()
        if array is not None:
            try:
                weakref.finalize(array, self._on_free, nbytes, op, path)
            except TypeError:  # non-weakref-able payloads: no free tracking
                pass

    def _rank(self, nbytes: int, op: str, path: str) -> None:
        top = self.top_allocations
        if len(top) >= self.top_n and nbytes <= top[-1]["nbytes"]:
            return
        top.append({"nbytes": nbytes, "op": op, "path": path,
                    "seq": self.alloc_count})
        # Stable on seq: equal sizes rank in allocation order.
        top.sort(key=lambda e: (-e["nbytes"], e["seq"]))
        del top[self.top_n:]

    def _on_free(self, nbytes: int, op: str, path: str) -> None:
        """Finalizer target: the array this entry accounted was collected."""
        if self.closed:
            return
        with self._lock:
            self.live_bytes -= nbytes
            self.total_freed_bytes += nbytes
            self.free_count += 1
            for table, key in ((self.live_by_path, path),
                               (self.live_by_op, op)):
                remaining = table.get(key, 0) - nbytes
                if remaining > 0:
                    table[key] = remaining
                else:
                    table.pop(key, None)
            if self.sample:
                self._maybe_sample()

    def _maybe_sample(self) -> None:
        now = self._clock()
        if self._last_sample_t is not None \
                and now - self._last_sample_t < self.sample_interval_s:
            return
        self._last_sample_t = now
        self.samples.append([round(now, 6), self.live_bytes])
        if len(self.samples) >= self.max_samples:
            self.samples = self.samples[::2]
            self.sample_interval_s *= 2

    # ------------------------------------------------------------------
    # shard folding
    # ------------------------------------------------------------------
    def merge_summary(self, summary: Mapping) -> None:
        """Fold one worker shard's ledger summary into this ledger.

        Allocation totals and per-op totals add — the quantities that are
        schedule-invariant, so pooled totals equal serial totals. The peak
        is a max: if the shard's high-water mark beats this ledger's, its
        attribution snapshot is adopted wholesale (peaks in different
        processes never overlap in time, so summing them would invent a
        peak nobody measured). The shard's residual ``live_bytes`` (arrays
        still referenced at worker shutdown) dies with the worker process
        and is deliberately not added. Timeline samples are per-process
        and are not merged.
        """
        if not isinstance(summary, Mapping):
            return
        with self._lock:
            self.total_alloc_bytes += int(summary.get("total_alloc_bytes") or 0)
            self.total_freed_bytes += int(summary.get("total_freed_bytes") or 0)
            self.alloc_count += int(summary.get("alloc_count") or 0)
            self.free_count += int(summary.get("free_count") or 0)
            for op, nbytes in (summary.get("alloc_by_op") or {}).items():
                self.alloc_by_op[op] = self.alloc_by_op.get(op, 0) + int(nbytes)
            shard_peak = int(summary.get("peak_bytes") or 0)
            if shard_peak > self.peak_bytes:
                self.peak_bytes = shard_peak
                attribution = summary.get("peak_attribution") or {}
                self.peak_path = str(attribution.get("path") or "")
                self.peak_op = str(attribution.get("op") or "")
                self.peak_by_path = {
                    str(k): int(v) for k, v in
                    (attribution.get("live_by_path") or {}).items()}
                self.peak_by_op = {
                    str(k): int(v) for k, v in
                    (attribution.get("live_by_op") or {}).items()}
            for entry in summary.get("top_allocations") or ():
                if isinstance(entry, Mapping) and "nbytes" in entry:
                    self._rank(int(entry["nbytes"]),
                               str(entry.get("op") or ""),
                               str(entry.get("path") or ""))
            if self.sample:
                incoming = [[float(s[0]), int(s[1])]
                            for s in summary.get("samples") or ()
                            if isinstance(s, (list, tuple)) and len(s) == 2]
                if incoming:
                    # Wall-clock stamps are comparable across processes on
                    # one host (same convention as the live event stream),
                    # so shard timelines interleave by time; decimate to
                    # keep the merged series bounded.
                    merged = sorted(self.samples + incoming,
                                    key=lambda s: s[0])
                    while len(merged) > self.max_samples:
                        merged = merged[::2]
                    self.samples = merged

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict:
        """Serializable snapshot: the ``memory`` event / registry block."""
        with self._lock:
            out: Dict = {
                "schema": MEMORY_SCHEMA,
                "live_bytes": self.live_bytes,
                "peak_bytes": self.peak_bytes,
                "total_alloc_bytes": self.total_alloc_bytes,
                "total_freed_bytes": self.total_freed_bytes,
                "alloc_count": self.alloc_count,
                "free_count": self.free_count,
                "alloc_by_op": dict(sorted(self.alloc_by_op.items())),
                "peak_attribution": {
                    "path": self.peak_path,
                    "op": self.peak_op,
                    "live_by_path": dict(sorted(self.peak_by_path.items())),
                    "live_by_op": dict(sorted(self.peak_by_op.items())),
                },
                "top_allocations": [
                    {k: e[k] for k in ("nbytes", "op", "path")}
                    for e in self.top_allocations],
                "rss_peak_bytes": peak_rss_bytes(),
                "rss_current_bytes": current_rss_bytes(),
            }
            if self.sample:
                out["samples"] = [list(s) for s in self.samples]
            return out

    def close(self) -> None:
        """Stop accounting: late finalizers (gc after shutdown) are ignored."""
        self.closed = True


def memory_block(events=(), metrics: Optional[Mapping] = None) -> Dict:
    """The registry record's ``memory`` block from a finished run's events.

    Takes the last ``{"type": "memory", ...}`` event (the ledger summary
    emitted at telemetry shutdown, shard summaries folded in), strips the
    bulky timeline samples, and augments it with the DeviceModel peak (the
    max over ``device.*.peak_bytes`` gauges in the metrics snapshot) and
    the **accounting-coverage ratios** — how much of the measured RSS peak
    the ledger explains and how much of the ledger the device accounting
    model covers. Returns ``{}`` when no ledger ran, so pre-v5 and
    ledger-less records read the same.
    """
    summary: Dict = {}
    for event in events:
        if event.get("type") == "memory" \
                and isinstance(event.get("memory"), Mapping):
            summary = dict(event["memory"])
    if not summary:
        return {}
    summary.pop("samples", None)  # timeline stays in the trace, not the index

    device_peak = 0
    gauges = (metrics or {}).get("gauges") or {}
    if isinstance(gauges, Mapping):
        for name, value in gauges.items():
            if not (str(name).startswith("device.")
                    and str(name).endswith(".peak_bytes")):
                continue
            # Snapshots carry gauges as {"value", "max"} mappings
            # (MetricsRegistry.to_state / gauge_values); accept bare
            # scalars too for hand-built test fixtures.
            if isinstance(value, Mapping):
                value = value.get("max", value.get("value"))
            if isinstance(value, (int, float)):
                device_peak = max(device_peak, int(value))
    summary["device_peak_bytes"] = device_peak

    # Shared-memory term store footprint (pooled sweeps with
    # --shared-terms): the peak published payload bytes, folded in from
    # whichever process set the gauge highest. Absent gauge → no key, so
    # serial/unshared records are byte-identical to pre-shm ones.
    shm_peak = None
    if isinstance(gauges, Mapping):
        value = gauges.get("shm.store.peak_bytes")
        if isinstance(value, Mapping):
            value = value.get("max", value.get("value"))
        if isinstance(value, (int, float)):
            shm_peak = int(value)
    if shm_peak is not None:
        summary["shm_peak_bytes"] = shm_peak

    # Blocked-tier accounting (schema v6): bytes living in spill files or
    # memory-mapped read-only are *not* allocation-ledger RAM — they are
    # reported next to the peak, never inside it, so peak attribution
    # stays truthful. All-zero (tier never active) → no key, keeping
    # v5-shaped records byte-identical when the tier is off.
    counters = (metrics or {}).get("counters") or {}
    if not isinstance(counters, Mapping):
        counters = {}

    def _count(name: str) -> int:
        value = counters.get(name)
        return int(value) if isinstance(value, (int, float)) else 0

    mmap_peak = 0
    if isinstance(gauges, Mapping):
        value = gauges.get("blocked.mmap_peak_bytes")
        if isinstance(value, Mapping):
            value = value.get("max", value.get("value"))
        if isinstance(value, (int, float)):
            mmap_peak = int(value)
    blocked = {
        "spmm_calls": _count("blocked.spmm_calls"),
        "tiles": _count("blocked.tiles"),
        "spill_bytes": _count("blocked.spill_bytes"),
        "spill_terms": _count("plan.terms.spill"),
        "spill_loads": _count("plan.terms.spill_load"),
        "mmap_bytes": mmap_peak,
    }
    if any(blocked.values()):
        summary["blocked"] = blocked

    rss_peak = summary.get("rss_peak_bytes") or 0
    ledger_peak = summary.get("peak_bytes") or 0
    summary["coverage"] = {
        # How much of the measured process peak the ledger accounts for.
        "ledger_vs_rss": round(ledger_peak / rss_peak, 4) if rss_peak else None,
        # How much of the accounted peak the device model metered.
        "device_vs_ledger": (round(device_peak / ledger_peak, 4)
                             if ledger_peak else None),
    }
    return summary
