"""Run registry: the session-level index over every bench invocation.

A single ``--trace`` run leaves one JSONL trace and one manifest sidecar;
this module makes those runs *queryable as history*. Every bench
invocation appends one :class:`RunRecord` — manifest hash, config
fingerprint, git rev, metric/counter snapshot, per-stage span aggregates,
trace path — to an append-only JSONL index (``runs.jsonl`` under
``benchmarks/results/registry/`` by default, overridable via the
``REPRO_REGISTRY_DIR`` environment variable or an explicit path).

The *config fingerprint* is the longitudinal identity of a run: a hash
over the manifest fields that define **what** was measured (experiment,
config, seed, datasets, cache mode) and deliberately **not** over the
fields that define *which code* measured it (git SHA, platform, library
versions). Two runs of the same configuration on different commits share
a fingerprint, which is exactly what lets ``python -m repro.bench compare
--registry <fingerprint>`` diff the two most recent runs of a
configuration without any file-path argument, and what the regression
detector (:mod:`repro.telemetry.regression`) keys its history on.

Durability discipline: appends are single ``write()`` calls of one
newline-terminated line (interleaved writers cannot shear each other's
records), a missing trailing newline left by a crashed writer is repaired
before the next append, and :meth:`RunRegistry.load` skips undecodable
lines (the truncated tail of a crash) instead of raising.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

PathLike = Union[str, Path]

#: Record schema. v2 (PR 4) added the ``workers`` count and the ``pool``
#: execution-policy block for parallel sweeps; v3 (PR 6) added the
#: ``live_path``/``chrome_trace_path`` pointers to a run's live-telemetry
#: artifacts; v4 (PR 7) added the ``artifacts`` block — resume mode and
#: artifact-store hit/miss/store accounting, deliberately outside the
#: config fingerprint (serving cells from the store must not change
#: *what* was measured); v5 (PR 8) added the ``memory`` block — the
#: allocation ledger's peak/live accounting, peak attribution, and the
#: DeviceModel-vs-ledger-vs-RSS accounting-coverage ratios, also outside
#: the fingerprint (how memory was *observed* must not change what was
#: measured); v6 (PR 10) added the ``blocked`` sub-block inside
#: ``memory`` — out-of-core tier accounting (tile counts, spill bytes,
#: spilled/reloaded planner terms, peak mmap bytes), present only when
#: the blocked tier actually ran so tier-off records stay v5-shaped.
#: Older lines (no such keys) still load —
#: :meth:`RunRecord.from_dict` fills the serial/None/empty defaults.
REGISTRY_SCHEMA = "repro.telemetry.registry/v6"

#: File name of the append-only index inside the registry directory.
REGISTRY_FILENAME = "runs.jsonl"

#: Default registry location, resolved relative to the working directory
#: (the repo root in every documented workflow).
DEFAULT_REGISTRY_DIR = Path("benchmarks") / "results" / "registry"

#: Environment variable overriding the default registry directory.
REGISTRY_DIR_ENV = "REPRO_REGISTRY_DIR"

#: Manifest keys that define a run's *configuration identity*. Everything
#: else (git SHA, platform, versions, argv, free-form metadata) varies
#: across commits/hosts and must not perturb the fingerprint.
FINGERPRINT_KEYS = ("experiment", "artifact", "config", "seed", "datasets",
                    "cache", "schema")


def default_registry_dir(override: Optional[PathLike] = None) -> Path:
    """Resolve the registry directory: explicit > env var > repo default."""
    if override is not None:
        return Path(override)
    env = os.environ.get(REGISTRY_DIR_ENV)
    if env:
        return Path(env)
    return DEFAULT_REGISTRY_DIR


def _stable_json(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=str)


def config_fingerprint(manifest: Mapping) -> str:
    """Deterministic 12-hex-digit identity of a run configuration.

    Hashes the :data:`FINGERPRINT_KEYS` subset of a run manifest, so runs
    of the same experiment/config/seed/datasets share a fingerprint across
    commits and platforms.
    """
    subset = {key: manifest.get(key) for key in FINGERPRINT_KEYS}
    return hashlib.sha256(_stable_json(subset).encode()).hexdigest()[:12]


def manifest_sha(manifest: Mapping) -> str:
    """Full-content hash of a manifest (changes with code/platform too)."""
    return hashlib.sha256(_stable_json(dict(manifest)).encode()).hexdigest()[:16]


@dataclass
class RunRecord:
    """One bench invocation as the registry remembers it."""

    config_fingerprint: str
    timestamp: float
    run_id: str = ""
    schema: str = REGISTRY_SCHEMA
    manifest_sha: str = ""
    git_sha: Optional[str] = None
    experiment: Optional[str] = None
    seed: Optional[int] = None
    #: Process-pool width the sweep ran with (1 = serial; pre-v2 records
    #: load as 1). Deliberately outside the config fingerprint: worker
    #: count must not change *what* was measured, and the determinism
    #: gate relies on serial/parallel runs sharing a fingerprint.
    workers: int = 1
    #: Pool execution policy + outcome accounting (empty for serial runs
    #: and pre-v2 records): workers, cell_timeout, max_retries, and any
    #: :func:`repro.runtime.pool.pool_stats` fields the caller attached.
    pool: Dict = field(default_factory=dict)
    metrics: Dict = field(default_factory=dict)
    stages: Dict = field(default_factory=dict)
    summary: Dict = field(default_factory=dict)
    trace_path: Optional[str] = None
    result_path: Optional[str] = None
    #: Live-telemetry artifacts of a monitored sweep (schema v3; None for
    #: unmonitored runs and pre-v3 records): the ``live.jsonl`` heartbeat/
    #: stall/RSS event stream and the Perfetto-loadable Chrome trace
    #: exported from it post-run.
    live_path: Optional[str] = None
    chrome_trace_path: Optional[str] = None
    #: Resumable-sweep accounting (schema v4; empty for runs without the
    #: artifact store and pre-v4 records): the resume mode
    #: (``resume``/``fresh``), the store directory, and the store's
    #: :meth:`~repro.runtime.artifacts.ArtifactStore.stats` traffic
    #: (hit/miss/stored/...). Outside the config fingerprint by design —
    #: a resumed run and a fresh run of one config share a fingerprint.
    artifacts: Dict = field(default_factory=dict)
    #: Memory observatory block (schema v5; empty for pre-v5 records and
    #: runs without telemetry): the allocation ledger summary
    #: (:func:`repro.telemetry.memory.memory_block`) — accounted
    #: peak/live/total bytes, per-path and per-op peak attribution, top
    #: allocations — plus the DeviceModel peak and the accounting
    #: coverage ratios (ledger vs measured RSS, device vs ledger). The
    #: memory regression thresholds (``memory.peak_bytes`` …) gate these
    #: fields. Outside the config fingerprint by design.
    memory: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunRecord":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def build_record(
    manifest: Mapping,
    metrics: Optional[Mapping] = None,
    stages: Optional[Mapping] = None,
    summary: Optional[Mapping] = None,
    trace_path: Optional[PathLike] = None,
    result_path: Optional[PathLike] = None,
    timestamp: Optional[float] = None,
    workers: int = 1,
    pool: Optional[Mapping] = None,
    live_path: Optional[PathLike] = None,
    chrome_trace_path: Optional[PathLike] = None,
    artifacts: Optional[Mapping] = None,
    memory: Optional[Mapping] = None,
) -> RunRecord:
    """Assemble a :class:`RunRecord` from a manifest plus run snapshots.

    ``metrics`` is a :meth:`MetricsRegistry.snapshot` dict, ``stages`` a
    :func:`repro.telemetry.report.aggregate_spans` dict, and ``summary``
    any flat name → number map (e.g. column means of the result rows).
    ``workers``/``pool`` annotate parallel sweeps (schema v2): the pool
    width and its execution policy / retry accounting.
    ``live_path``/``chrome_trace_path`` point at the live event stream
    and the exported Chrome trace of a monitored sweep (schema v3).
    ``artifacts`` is the resumable-sweep block (schema v4): resume mode,
    store directory, and artifact-store traffic. ``memory`` is the
    memory-observatory block (schema v5): the allocation ledger summary
    with peak attribution and accounting-coverage ratios.
    """
    timestamp = time.time() if timestamp is None else float(timestamp)
    fingerprint = config_fingerprint(manifest)
    content_sha = manifest_sha(manifest)
    run_id = hashlib.sha256(
        f"{content_sha}:{timestamp:.6f}:{os.getpid()}".encode()
    ).hexdigest()[:12]
    return RunRecord(
        config_fingerprint=fingerprint,
        timestamp=timestamp,
        run_id=run_id,
        manifest_sha=content_sha,
        git_sha=manifest.get("git_sha"),
        experiment=manifest.get("experiment"),
        seed=manifest.get("seed"),
        workers=int(workers),
        pool=dict(pool or {}),
        metrics=dict(metrics or {}),
        stages={str(k): dict(v) for k, v in (stages or {}).items()},
        summary=dict(summary or {}),
        trace_path=str(trace_path) if trace_path is not None else None,
        result_path=str(result_path) if result_path is not None else None,
        live_path=str(live_path) if live_path is not None else None,
        chrome_trace_path=(str(chrome_trace_path)
                           if chrome_trace_path is not None else None),
        artifacts=dict(artifacts or {}),
        memory=dict(memory or {}),
    )


def metric_value(record: Union[RunRecord, Mapping], path: str):
    """Resolve a dotted path into a record, tolerating dotted leaf keys.

    ``stages.train.seconds`` walks nested dicts; ``metrics.counters.
    ops.eig.flops`` works even though the counter name itself contains
    dots, because at every level the *longest remaining* key is tried
    first. Returns ``None`` when the path does not resolve.
    """
    node = record.to_dict() if isinstance(record, RunRecord) else record
    remaining = path
    while remaining:
        if not isinstance(node, Mapping):
            return None
        if remaining in node:
            return node[remaining]
        # Split at successive dots, preferring the longest prefix match.
        prefix = remaining
        while "." in prefix:
            prefix = prefix.rsplit(".", 1)[0]
            if prefix in node:
                node = node[prefix]
                remaining = remaining[len(prefix) + 1:]
                break
        else:
            return None
    return node


class RunRegistry:
    """Append-only, crash-tolerant JSONL index of bench runs.

    Parameters
    ----------
    root:
        Registry directory (created on first append). ``None`` resolves
        through :func:`default_registry_dir`.
    """

    def __init__(self, root: Optional[PathLike] = None):
        self.root = default_registry_dir(root)
        self.path = self.root / REGISTRY_FILENAME
        self.corrupt_lines = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: RunRecord) -> RunRecord:
        """Durably append one record as a single atomic line write."""
        line = _stable_json(record.to_dict()) + "\n"
        with self._lock:
            self.root.mkdir(parents=True, exist_ok=True)
            # Repair a truncated tail (crashed writer) so the new record
            # starts on its own line instead of extending the broken one.
            if self.path.exists() and self.path.stat().st_size > 0:
                with self.path.open("rb") as handle:
                    handle.seek(-1, os.SEEK_END)
                    if handle.read(1) != b"\n":
                        line = "\n" + line
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        return record

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def load(self) -> List[RunRecord]:
        """All decodable records in history order (timestamp, append order).

        Undecodable lines — the truncated last line of a crashed append —
        are skipped and tallied on :attr:`corrupt_lines`.
        """
        self.corrupt_lines = 0
        records: List[RunRecord] = []
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    records.append(RunRecord.from_dict(payload))
                except (json.JSONDecodeError, TypeError):
                    self.corrupt_lines += 1
        # Appends are chronological, so file order is the tiebreak for
        # identical timestamps (sorted() is stable).
        records.sort(key=lambda r: r.timestamp)
        return records

    def __len__(self) -> int:
        return len(self.load())

    def fingerprints(self) -> Dict[str, int]:
        """``fingerprint -> run count`` over the whole registry."""
        counts: Dict[str, int] = {}
        for record in self.load():
            counts[record.config_fingerprint] = \
                counts.get(record.config_fingerprint, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def by_config(self, fingerprint: str) -> List[RunRecord]:
        """Runs whose fingerprint matches (prefix match, history order)."""
        return [r for r in self.load()
                if r.config_fingerprint.startswith(fingerprint)]

    def latest(self, fingerprint: Optional[str] = None) -> Optional[RunRecord]:
        """Most recent run, optionally restricted to one config."""
        records = self.by_config(fingerprint) if fingerprint else self.load()
        return records[-1] if records else None

    def history(self, metric: str, fingerprint: Optional[str] = None,
                ) -> List[Tuple[float, float]]:
        """``(timestamp, value)`` series of one metric across history.

        ``metric`` is a dotted path (see :func:`metric_value`); runs where
        it does not resolve to a number are skipped.
        """
        records = self.by_config(fingerprint) if fingerprint else self.load()
        series: List[Tuple[float, float]] = []
        for record in records:
            value = metric_value(record, metric)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                series.append((record.timestamp, float(value)))
        return series

    def resolve(self, spec: str) -> List[RunRecord]:
        """Runs matching a spec: fingerprint prefix or experiment name.

        When the spec names an experiment with several distinct configs,
        the most recently run config's history is returned, so
        ``compare --registry efficiency`` always diffs like against like.
        """
        records = self.load()
        matched = [r for r in records if r.config_fingerprint.startswith(spec)]
        if not matched:
            by_experiment = [r for r in records if r.experiment == spec]
            if by_experiment:
                newest = by_experiment[-1].config_fingerprint
                matched = [r for r in records
                           if r.config_fingerprint == newest]
        return matched

    def resolve_pair(self, spec: str) -> Tuple[RunRecord, RunRecord]:
        """The two most recent runs of one config: (baseline, candidate)."""
        matched = self.resolve(spec)
        if len(matched) < 2:
            from ..errors import ReproError

            known = sorted(self.fingerprints().items())
            hint = ", ".join(f"{fp}×{n}" for fp, n in known) or "(empty)"
            raise ReproError(
                f"registry at {self.path} holds {len(matched)} run(s) "
                f"matching {spec!r}; need 2 to compare. Known configs: {hint}")
        return matched[-2], matched[-1]


def record_run(
    manifest: Mapping,
    events: Sequence[Mapping] = (),
    metrics: Optional[Mapping] = None,
    summary: Optional[Mapping] = None,
    trace_path: Optional[PathLike] = None,
    result_path: Optional[PathLike] = None,
    registry_dir: Optional[PathLike] = None,
    workers: int = 1,
    pool: Optional[Mapping] = None,
    live_path: Optional[PathLike] = None,
    chrome_trace_path: Optional[PathLike] = None,
    artifacts: Optional[Mapping] = None,
) -> RunRecord:
    """One-call indexing: fold a finished run's artifacts into the registry.

    Extracts the final metrics snapshot, the per-stage span aggregate, and
    the memory-observatory block (ledger summary + coverage ratios) from
    ``events`` (unless ``metrics`` is given explicitly), builds the
    record, and appends it to the registry at ``registry_dir``.
    """
    from .memory import memory_block
    from .report import aggregate_spans

    if metrics is None:
        metrics = {}
        for event in events:
            if event.get("type") == "metrics":
                metrics = event.get("metrics") or {}
    record = build_record(
        manifest,
        metrics=metrics,
        stages=aggregate_spans(events),
        summary=summary,
        trace_path=trace_path,
        result_path=result_path,
        workers=workers,
        pool=pool,
        live_path=live_path,
        chrome_trace_path=chrome_trace_path,
        artifacts=artifacts,
        memory=memory_block(events, metrics),
    )
    RunRegistry(registry_dir).append(record)
    return record
