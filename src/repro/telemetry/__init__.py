"""repro.telemetry — spans, metrics, and run manifests for the benchmark.

The paper's contribution is *measurement*; this package is the instrument.
It provides three connected layers:

- **Spans** (:mod:`.spans`): a hierarchical, thread-safe tracer. Trainers
  and the profiler open nested spans (``precompute → train → epoch →
  forward/backward``) whose wall time, allocated bytes, and RAM growth
  land on an event sink.
- **Metrics** (:mod:`.metrics`): counters/gauges/streaming histograms fed
  by op hooks in :mod:`repro.autodiff` (matmul/spmm FLOPs and bytes),
  per-epoch hooks in :mod:`repro.training` (loss, score, grad norm), and
  the :mod:`repro.runtime` cache/planner layers (``cache.*`` memo
  traffic; ``plan.terms.{hit,miss,evict}`` / ``plan.chains.*`` /
  ``plan.spmm_avoided`` basis-term store traffic).
- **Artifacts** (:mod:`.sinks`, :mod:`.manifest`, :mod:`.report`): a JSONL
  trace file, a deterministic run manifest written next to every result
  file, and a terminal report (top spans with inclusive *and* exclusive
  cost, per-epoch sparklines, cross-run trace diffs).
- **History** (:mod:`.registry`, :mod:`.regression`): an append-only run
  registry indexing every bench invocation by config fingerprint, with
  query APIs (``latest`` / ``by_config`` / ``history``) and declarative
  regression thresholds gating CI on runtime/memory drift.

Module-level usage — the pattern every instrumented call site follows::

    from repro import telemetry

    telemetry.configure(trace_path="run.jsonl")   # None → memory only
    with telemetry.span("precompute", filter="ppr"):
        ...
    telemetry.emit_event("epoch", epoch=0, loss=1.2)
    events = telemetry.shutdown()                 # flush + detach hooks

When no tracer is configured, :func:`span` returns a shared no-op context
manager and :func:`emit_event` returns immediately — instrumented code
pays one ``None`` check, which is what keeps the disabled-mode overhead
unmeasurable.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

from .hooks import (
    install_alloc_hooks,
    install_op_hooks,
    uninstall_alloc_hooks,
    uninstall_op_hooks,
)
from .live import (
    LiveConfig,
    LiveEmitter,
    RssSampler,
    SweepMonitor,
    monitoring,
    tick,
    worker_session,
)
from .manifest import (
    MANIFEST_SUFFIX,
    build_manifest,
    dataset_fingerprint,
    git_sha,
    hardware_info,
    manifest_path_for,
    platform_info,
    read_manifest,
    write_manifest,
)
from .memory import MEMORY_SCHEMA, AllocationLedger, memory_block
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .registry import (
    RunRecord,
    RunRegistry,
    build_record,
    config_fingerprint,
    default_registry_dir,
    metric_value,
    record_run,
)
from .regression import (
    Threshold,
    Verdict,
    default_thresholds,
    evaluate_pair,
    evaluate_registry,
    load_thresholds,
    render_verdict_table,
    save_thresholds,
)
from .report import (
    aggregate_spans,
    final_memory,
    final_metrics,
    render_counters,
    render_epoch_table,
    render_memory,
    render_run_diff,
    render_top_spans,
    render_trace_report,
    sparkline,
)
from .rss import current_rss_bytes, peak_rss_bytes
from .sinks import (
    EventSink,
    JsonlSink,
    MemorySink,
    NullSink,
    TeeSink,
    load_events,
)
from .spans import NOOP_SPAN, Span, Tracer
from .trace_export import chrome_trace_events, export_chrome_trace

_tracer: Optional[Tracer] = None
_memory: Optional[MemorySink] = None
_ledger: Optional[AllocationLedger] = None
_config_lock = threading.Lock()


def configure(trace_path: Optional[str] = None,
              sink: Optional[EventSink] = None,
              metrics: Optional[MetricsRegistry] = None,
              mem_trace: bool = False) -> Tracer:
    """Enable telemetry process-wide; returns the active tracer.

    Events always accumulate in an in-process :class:`MemorySink` (so
    :func:`shutdown` can hand them to the report renderer); ``trace_path``
    additionally streams them to a JSONL file. An explicit ``sink``
    replaces the memory buffer entirely. Re-configuring tears down any
    previous tracer first.

    An :class:`AllocationLedger` is always installed alongside the tracer
    (live/peak accounting is a handful of dict updates per allocation);
    ``mem_trace=True`` additionally records the throttled live-bytes
    timeline that the Chrome trace exporter renders as a counter track.
    """
    global _tracer, _memory, _ledger
    with _config_lock:
        if _tracer is not None:
            _shutdown_locked()
        if sink is not None:
            _memory = None
            active_sink = sink
        else:
            _memory = MemorySink()
            if trace_path is not None:
                active_sink = TeeSink(_memory, JsonlSink(trace_path))
            else:
                active_sink = _memory
        _tracer = Tracer(sink=active_sink, metrics=metrics)
        _ledger = AllocationLedger(sample=mem_trace)
        install_op_hooks(_tracer)
        install_alloc_hooks(_tracer, _ledger)
        return _tracer


def _shutdown_locked() -> List[Dict]:
    global _tracer, _memory, _ledger
    events: List[Dict] = []
    if _tracer is not None:
        uninstall_op_hooks()
        uninstall_alloc_hooks()
        if _ledger is not None:
            # The run's memory summary rides the ordinary event stream, so
            # worker shards ship it for free and fold_shard can merge it.
            _tracer.sink.emit({"type": "memory",
                               "memory": _ledger.summary()})
            _ledger.close()
        _tracer.close()
        if _memory is not None:
            events = _memory.events
    _tracer = None
    _memory = None
    _ledger = None
    return events


def shutdown() -> List[Dict]:
    """Disable telemetry; flush sinks and return the buffered events."""
    with _config_lock:
        return _shutdown_locked()


def enabled() -> bool:
    """Whether a tracer is currently active."""
    return _tracer is not None


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` while telemetry is disabled."""
    return _tracer


def get_metrics() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` while telemetry is disabled."""
    return _tracer.metrics if _tracer is not None else None


def get_ledger() -> Optional[AllocationLedger]:
    """The active allocation ledger, or ``None`` while disabled."""
    return _ledger


def span(name: str, **attrs) -> Union[Span, "object"]:
    """Open a span on the active tracer; a shared no-op when disabled."""
    if _tracer is None:
        return NOOP_SPAN
    return _tracer.span(name, **attrs)


def emit_event(event_type: str, **fields) -> None:
    """Emit a free-form event (no-op while disabled)."""
    if _tracer is not None:
        _tracer.emit_event(event_type, **fields)


def fold_shard(events: Optional[List[Dict]] = None,
               metrics_state: Optional[Dict] = None,
               label: Optional[str] = None) -> None:
    """Fold one worker shard into the active run (no-op while disabled).

    A sweep worker (:mod:`repro.runtime.pool`) runs under its own tracer
    and registry; this folds what it shipped back into the parent's:

    - ``metrics_state`` (a :meth:`MetricsRegistry.to_state` dict) merges
      via :meth:`MetricsRegistry.merge_from` — counters add, gauges keep
      the max peak, histograms combine deterministically.
    - ``events`` are re-emitted onto the parent sink with span ids
      remapped to parent-unique ids, the worker's root spans re-parented
      under the parent's current span, depths shifted accordingly, and
      (when given) a ``shard`` label attached — the merged trace reads as
      one coherent run. The worker's final ``metrics`` snapshot event is
      dropped: the parent emits its own merged snapshot at close. The
      worker's final ``memory`` event (its allocation-ledger summary) is
      likewise not re-emitted — it merges into the parent's ledger
      (:meth:`AllocationLedger.merge_summary`: allocation totals add,
      peaks max with attribution adopted), so the parent's single
      shutdown summary carries pooled totals equal to serial totals.

    Fold shards in deterministic (cell-list) order: counter merging is
    commutative, but trace event order — and therefore the bytes of the
    trace file — is whatever order shards were folded in.
    """
    if _tracer is None:
        return
    if metrics_state:
        _tracer.metrics.merge_from(MetricsRegistry.from_state(metrics_state))
    if not events:
        return
    current = _tracer.current_span()
    base_parent = current.span_id if current is not None else None
    base_depth = current.depth + 1 if current is not None else 0
    id_map: Dict[int, int] = {}
    for event in events:
        if event.get("type") == "span" and event.get("id") is not None:
            id_map[event["id"]] = _tracer.next_span_id()
    for event in events:
        if event.get("type") == "metrics":
            continue
        if event.get("type") == "memory":
            if _ledger is not None:
                _ledger.merge_summary(event.get("memory") or {})
            continue
        event = dict(event)
        if event.get("type") == "span":
            event["id"] = id_map.get(event.get("id"), event.get("id"))
            parent = event.get("parent")
            event["parent"] = id_map.get(parent, base_parent)
            event["depth"] = int(event.get("depth", 0)) + base_depth
            if label is not None:
                attrs = dict(event.get("attrs") or {})
                attrs.setdefault("shard", label)
                event["attrs"] = attrs
        elif event.get("span") in id_map:
            event["span"] = id_map[event["span"]]
        _tracer.sink.emit(event)


from contextlib import contextmanager


@contextmanager
def shard_capture(shard: Dict):
    """Run the body under a fresh, isolated tracer; capture its shard.

    The inline-mode counterpart of a pool worker's from-scratch telemetry
    (:func:`repro.runtime.pool._cell_entry`): the body's spans and
    metrics land in a temporary tracer instead of the parent's, and on
    exit ``shard`` is populated with ``events`` (the captured span
    events) and ``metrics`` (a :meth:`MetricsRegistry.to_state` dict) —
    exactly what :func:`fold_shard` accepts and what the artifact store
    (:mod:`repro.runtime.artifacts`) persists next to a cell's value, so
    a cell's shard has one shape whether it ran in a worker process or
    inline. The parent tracer (and the engine op hooks bound to it) is
    restored afterwards even if the body raises; while telemetry is
    disabled the body runs unchanged and ``shard`` stays empty.
    """
    global _tracer, _memory, _ledger
    with _config_lock:
        parent, parent_memory, parent_ledger = _tracer, _memory, _ledger
        if parent is not None:
            uninstall_op_hooks()
            uninstall_alloc_hooks()
            _memory = MemorySink()
            _tracer = Tracer(sink=_memory)
            # Inherit the parent's timeline-sampling config so a
            # --mem-trace run's counter track covers inline cells too
            # (their summaries — samples included — fold back via
            # merge_summary).
            if parent_ledger is not None:
                _ledger = AllocationLedger(
                    sample=parent_ledger.sample,
                    sample_interval_s=parent_ledger.sample_interval_s)
            else:
                _ledger = AllocationLedger()
            install_op_hooks(_tracer)
            install_alloc_hooks(_tracer, _ledger)
    if parent is None:
        yield shard
        return
    try:
        yield shard
    finally:
        with _config_lock:
            child, child_memory, child_ledger = _tracer, _memory, _ledger
            if child is not None:
                uninstall_op_hooks()
                uninstall_alloc_hooks()
                shard["metrics"] = child.metrics.to_state()
                if child_ledger is not None:
                    # Same shape a pool worker ships: the cell's ledger
                    # summary rides the shard events for fold_shard.
                    child.sink.emit({"type": "memory",
                                     "memory": child_ledger.summary()})
                    child_ledger.close()
                child.close()
                shard["events"] = child_memory.events if child_memory else []
            _tracer, _memory, _ledger = parent, parent_memory, parent_ledger
            install_op_hooks(parent)
            if parent_ledger is not None:
                install_alloc_hooks(parent, parent_ledger)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active registry (no-op while disabled)."""
    if _tracer is not None:
        _tracer.metrics.gauge(name).set(value)


def inc_counter(name: str, amount: float = 1) -> None:
    """Increment a counter on the active registry (no-op while disabled)."""
    if _tracer is not None:
        _tracer.metrics.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Feed a histogram on the active registry (no-op while disabled)."""
    if _tracer is not None:
        _tracer.metrics.histogram(name).observe(value)


__all__ = [
    # lifecycle
    "configure",
    "shutdown",
    "enabled",
    "get_tracer",
    "get_metrics",
    "get_ledger",
    # recording
    "span",
    "emit_event",
    "fold_shard",
    "shard_capture",
    "set_gauge",
    "inc_counter",
    "observe",
    "NOOP_SPAN",
    # building blocks
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "AllocationLedger",
    "MEMORY_SCHEMA",
    "memory_block",
    "current_rss_bytes",
    "peak_rss_bytes",
    "EventSink",
    "MemorySink",
    "JsonlSink",
    "TeeSink",
    "NullSink",
    "load_events",
    # manifests
    "build_manifest",
    "write_manifest",
    "read_manifest",
    "manifest_path_for",
    "dataset_fingerprint",
    "git_sha",
    "platform_info",
    "hardware_info",
    "MANIFEST_SUFFIX",
    # live sweep observatory
    "LiveConfig",
    "LiveEmitter",
    "RssSampler",
    "SweepMonitor",
    "monitoring",
    "tick",
    "worker_session",
    "chrome_trace_events",
    "export_chrome_trace",
    # reporting
    "render_trace_report",
    "render_top_spans",
    "render_epoch_table",
    "render_counters",
    "render_memory",
    "render_run_diff",
    "aggregate_spans",
    "final_metrics",
    "final_memory",
    "sparkline",
    # run registry
    "RunRecord",
    "RunRegistry",
    "build_record",
    "config_fingerprint",
    "default_registry_dir",
    "metric_value",
    "record_run",
    # regression gates
    "Threshold",
    "Verdict",
    "default_thresholds",
    "evaluate_pair",
    "evaluate_registry",
    "load_thresholds",
    "save_thresholds",
    "render_verdict_table",
    # hooks
    "install_op_hooks",
    "uninstall_op_hooks",
    "install_alloc_hooks",
    "uninstall_alloc_hooks",
]
