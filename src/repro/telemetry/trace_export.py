"""Chrome Trace Event Format export: sweeps viewable in Perfetto.

Converts a finished run's artifacts — the live event stream written by
:mod:`repro.telemetry.live` plus the span tree from the ordinary trace —
into the Chrome Trace Event JSON format (the ``trace.json`` that
https://ui.perfetto.dev and ``chrome://tracing`` open directly):

- one **track per worker process** (``tid`` = worker pid) carrying the
  cell execution slices (``ph: "X"`` complete events built from
  ``cell_start``/``cell_finish`` pairs), the folded worker span tree
  re-based at each cell's start time, and instant heartbeat markers;
- a **scheduler track** (``tid`` 0) with parent-side spans, cell-launch
  markers, and global stall instants;
- an **RSS counter track** (``ph: "C"``, name ``rss``) with one series
  per worker, fed by the sampled watermarks — the *measured* memory
  timeline;
- a **ledger live-bytes counter track** (``ph: "C"``, name
  ``ledger_live``) from the allocation ledger's throttled samples
  (``--mem-trace``), carried in the trace's final ``memory`` event — the
  *accounted* memory timeline, so Perfetto shows accounted vs measured
  memory side by side.

Timestamps: live events carry wall-clock ``t`` seconds (comparable
across processes on one host); span events carry ``t_start_s`` relative
to their tracer's epoch. Worker spans are re-based at the wall time of
their cell's ``cell_start`` (the worker configures its tracer at attempt
start), parent spans at ``span_epoch_wall`` when the caller provides it.
Everything is shifted so the earliest event sits at ts=0 and expressed
in integer microseconds, as the format requires.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from .sinks import _json_default

PathLike = Union[str, Path]

#: The single virtual process all tracks live under.
TRACE_PID = 1

#: The parent/scheduler track.
SCHEDULER_TID = 0


def _us(wall_s: float, t0: float) -> int:
    return max(0, int(round((wall_s - t0) * 1e6)))


def _worker_pids(live_events: Sequence[Mapping]) -> List[int]:
    """Worker pids in order of first appearance in the live stream."""
    pids: List[int] = []
    for event in live_events:
        pid = event.get("pid")
        if pid is not None and event.get("type") != "stall" \
                and pid not in pids:
            pids.append(int(pid))
    return pids


def _cell_starts(live_events: Sequence[Mapping]) -> Dict[tuple, Mapping]:
    """``(cell, attempt) -> cell_start event`` (last one wins on retry)."""
    starts: Dict[tuple, Mapping] = {}
    for event in live_events:
        if event.get("type") == "cell_start":
            starts[(event.get("cell"),
                    int(event.get("attempt") or 1))] = event
    return starts


def _memory_samples(events: Sequence[Mapping]) -> List[tuple]:
    """``(wall_t, live_bytes)`` ledger samples from the trace's final
    ``memory`` event (present when the run used ``--mem-trace``)."""
    samples: List[tuple] = []
    for event in events:
        if event.get("type") != "memory":
            continue
        payload = event.get("memory")
        if not isinstance(payload, Mapping):
            continue
        samples = [(float(s[0]), float(s[1]))
                   for s in payload.get("samples") or ()
                   if isinstance(s, (list, tuple)) and len(s) == 2]
    return samples


def chrome_trace_events(live_events: Sequence[Mapping],
                        span_events: Iterable[Mapping] = (),
                        span_epoch_wall: Optional[float] = None,
                        ) -> List[Dict]:
    """Build the ``traceEvents`` list from live + span event streams."""
    span_events = list(span_events)
    memory_samples = _memory_samples(span_events)
    live_events = [e for e in live_events if isinstance(e.get("t"),
                                                        (int, float))]
    span_events = [e for e in span_events if e.get("type") == "span"]
    times = [float(e["t"]) for e in live_events]
    times.extend(t for t, _ in memory_samples)
    if span_epoch_wall is not None:
        times.append(float(span_epoch_wall))
    t0 = min(times) if times else 0.0

    starts = _cell_starts(live_events)
    pids = _worker_pids(live_events)
    out: List[Dict] = [
        {"ph": "M", "name": "process_name", "pid": TRACE_PID,
         "args": {"name": "repro sweep"}},
        {"ph": "M", "name": "thread_name", "pid": TRACE_PID,
         "tid": SCHEDULER_TID, "args": {"name": "scheduler"}},
        {"ph": "M", "name": "thread_sort_index", "pid": TRACE_PID,
         "tid": SCHEDULER_TID, "args": {"sort_index": 0}},
    ]
    for order, pid in enumerate(pids, start=1):
        out.append({"ph": "M", "name": "thread_name", "pid": TRACE_PID,
                    "tid": pid, "args": {"name": f"worker {pid}"}})
        out.append({"ph": "M", "name": "thread_sort_index", "pid": TRACE_PID,
                    "tid": pid, "args": {"sort_index": order}})

    # -- cell slices: cell_start .. cell_finish per attempt --------------
    last_t = max(times) if times else 0.0
    finishes = {(e.get("cell"), int(e.get("attempt") or 1)): e
                for e in live_events if e.get("type") == "cell_finish"}
    for key, start in starts.items():
        finish = finishes.get(key)
        end_t = float(finish["t"]) if finish is not None else last_t
        tid = int(start.get("pid") or SCHEDULER_TID)
        args = {"attempt": key[1]}
        if finish is not None:
            args["status"] = finish.get("status")
            args["seconds"] = finish.get("seconds")
        out.append({"name": str(key[0]), "cat": "cell", "ph": "X",
                    "ts": _us(float(start["t"]), t0),
                    "dur": max(1, _us(end_t, t0)
                               - _us(float(start["t"]), t0)),
                    "pid": TRACE_PID, "tid": tid, "args": args})

    # -- instants, counters ----------------------------------------------
    for event in live_events:
        kind = event.get("type")
        ts = _us(float(event["t"]), t0)
        if kind == "heartbeat":
            args = {k: event[k] for k in ("kind", "epoch", "loss", "counters")
                    if event.get(k) is not None}
            out.append({"name": "heartbeat", "cat": "live", "ph": "i",
                        "s": "t", "ts": ts, "pid": TRACE_PID,
                        "tid": int(event.get("pid") or SCHEDULER_TID),
                        "args": args})
        elif kind == "rss":
            pid = event.get("pid")
            if pid is None:
                continue
            out.append({"name": "rss", "ph": "C", "ts": ts,
                        "pid": TRACE_PID, "tid": SCHEDULER_TID,
                        "args": {f"w{pid}": round(
                            float(event.get("watermark_bytes") or 0)
                            / 2 ** 20, 2)}})
        elif kind == "stall":
            out.append({"name": "stall", "cat": "live", "ph": "i", "s": "g",
                        "ts": ts, "pid": TRACE_PID,
                        "tid": int(event.get("pid") or SCHEDULER_TID),
                        "args": {"cell": event.get("cell"),
                                 "attempt": event.get("attempt"),
                                 "silent_s": event.get("silent_s"),
                                 "threshold_s": event.get("threshold_s")}})
        elif kind in ("cell_launch", "sweep_start", "sweep_finish"):
            out.append({"name": kind, "cat": "live", "ph": "i", "s": "t",
                        "ts": ts, "pid": TRACE_PID, "tid": SCHEDULER_TID,
                        "args": {k: v for k, v in event.items()
                                 if k not in ("type", "t")}})

    # -- ledger live-bytes counter track (accounted memory) ----------------
    for wall_t, live in memory_samples:
        out.append({"name": "ledger_live", "ph": "C",
                    "ts": _us(wall_t, t0), "pid": TRACE_PID,
                    "tid": SCHEDULER_TID,
                    "args": {"MiB": round(live / 2 ** 20, 2)}})

    # -- span tree ---------------------------------------------------------
    # A folded worker span carries attrs.shard == its cell label and
    # t_start_s relative to the *worker's* tracer epoch, which coincides
    # (within ms) with the cell's cell_start wall time — the re-base.
    start_by_cell: Dict[str, Mapping] = {}
    for (cell, _attempt), start in starts.items():
        start_by_cell[cell] = start  # attempts ascend; last (successful) wins
    for event in span_events:
        attrs = event.get("attrs") or {}
        shard = attrs.get("shard")
        if shard is not None:
            start = start_by_cell.get(shard)
            if start is None:
                continue  # worker span with no cell_start: no clock base
            base = float(start["t"])
            tid = int(start.get("pid") or SCHEDULER_TID)
        elif span_epoch_wall is not None:
            base = float(span_epoch_wall)
            tid = SCHEDULER_TID
        else:
            continue  # no clock base for this span; skip rather than lie
        start_s = float(event.get("t_start_s") or 0.0)
        duration = float(event.get("duration_s") or 0.0)
        out.append({"name": str(event.get("name")), "cat": "span", "ph": "X",
                    "ts": _us(base + start_s, t0),
                    "dur": max(1, int(round(duration * 1e6))),
                    "pid": TRACE_PID, "tid": tid,
                    "args": {"alloc_bytes": event.get("alloc_bytes"),
                             "mem_bytes": event.get("mem_bytes"),
                             **{k: v for k, v in attrs.items()}}})
    out.sort(key=lambda e: (e.get("ts", 0), e.get("tid", 0)))
    return out


def export_chrome_trace(path: PathLike,
                        live_events: Sequence[Mapping],
                        span_events: Iterable[Mapping] = (),
                        span_epoch_wall: Optional[float] = None) -> Path:
    """Write a Perfetto-loadable ``trace.json``; returns its path."""
    payload = {
        "traceEvents": chrome_trace_events(live_events, span_events,
                                           span_epoch_wall),
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.telemetry.trace_export",
                      "schema": "chrome-trace-event/json-array"},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, separators=(",", ":"),
                               default=_json_default) + "\n")
    return path
