"""One RSS reader for all of telemetry: current and peak, one semantics.

Before this module existed the package had two divergent readers:
:mod:`.spans` measured span RAM deltas against the *monotone* peak-RSS
rusage counter (``ru_maxrss``) — so every span opened after the process
high-water mark reported ``ram_delta_bytes == 0`` — while :mod:`.live`
sampled the *current* RSS from ``/proc/self/statm``. Both now read
through here:

- :func:`current_rss_bytes` — the instantaneous resident set, from
  ``/proc/self/statm`` on Linux (resident pages × page size). Falls back
  to the peak counter where ``/proc`` is unavailable, so the value is
  monotone-peak rather than instantaneous there.
- :func:`peak_rss_bytes` — the process-lifetime high-water mark from
  ``getrusage`` (``ru_maxrss`` is KiB on Linux; normalized to bytes
  assuming the Linux convention, which is where the benchmarks run).

Span ``ram_delta_bytes`` is current-RSS based since the memory
observatory landed: it is the **signed** change in resident memory across
the span — negative when the span net-freed memory — instead of the old
"growth of the process peak", which under-reported every stage that ran
after the largest one. The regression thresholds over
``stages.*.ram_delta_bytes`` gate the same quantity.
"""

from __future__ import annotations

import os

try:  # resource is POSIX-only; RSS reading degrades gracefully without it.
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]


def current_rss_bytes() -> int:
    """Current (not peak) RSS of this process in bytes; 0 if unknown.

    Reads ``/proc/self/statm`` on Linux — the second field is resident
    pages — and falls back to :func:`peak_rss_bytes` elsewhere, so the
    series is monotone-peak rather than instantaneous there.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    return peak_rss_bytes()


def peak_rss_bytes() -> int:
    """Process-lifetime peak RSS in bytes (0 where unavailable)."""
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return 0
    # ru_maxrss is KiB on Linux, bytes on macOS; normalize to bytes
    # assuming the Linux convention (this repo's benchmarks run on Linux).
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
