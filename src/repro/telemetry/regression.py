"""Declarative regression gates over run-registry history.

The registry (:mod:`repro.telemetry.registry`) remembers what every bench
run cost; this module decides whether the latest run is *allowed* to cost
that much. A :class:`Threshold` declares one rule against a dotted metric
path in a run record — maximum relative slowdown of a stage, maximum RAM
growth, a floor on accuracy — and :func:`evaluate_pair` applies a list of
them to a (baseline, candidate) record pair, producing :class:`Verdict`
rows that render as the CI gate table (``bench-regress`` job).

Metric paths support one ``*`` wildcard segment so a single rule covers
every stage::

    Threshold("stages.*.seconds", max_rel_increase=0.75, ignore_below=0.02)
    Threshold("stages.*.ram_delta_bytes", max_rel_increase=0.5,
              ignore_below=64 * 2**20)
    Threshold("memory.peak_bytes", max_rel_increase=0.5,
              ignore_below=16 * 2**20)
    Threshold("summary.mean", min_value=0.6)

Thresholds are plain data and round-trip through JSON
(:func:`load_thresholds` / :func:`save_thresholds`), which is how
EXPERIMENTS.md pins per-figure gates next to the benchmarks they protect.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .registry import RunRecord, RunRegistry, metric_value

PathLike = Union[str, Path]


@dataclass(frozen=True)
class Threshold:
    """One declarative rule against a run-record metric.

    Parameters
    ----------
    metric:
        Dotted path into a :class:`RunRecord` (``stages.train.seconds``,
        ``metrics.counters.ops.eig.flops``, ``summary.mean``); one path
        segment may be ``*`` to fan the rule out over every key there.
    max_rel_increase:
        Candidate may exceed baseline by at most this fraction
        (``0.75`` = +75 %). Lower-is-better semantics.
    max_abs_increase:
        Candidate may exceed baseline by at most this absolute amount.
    min_value / max_value:
        Absolute bounds on the candidate value alone (no baseline needed)
        — e.g. an accuracy floor.
    ignore_below:
        Skip the rule when the *baseline* value is under this magnitude;
        the noise guard for millisecond-scale stages.
    """

    metric: str
    max_rel_increase: Optional[float] = None
    max_abs_increase: Optional[float] = None
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    ignore_below: float = 0.0

    def to_dict(self) -> Dict:
        return {k: v for k, v in dataclasses.asdict(self).items()
                if v is not None and not (k == "ignore_below" and v == 0.0)}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Threshold":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class Verdict:
    """Outcome of one expanded threshold on one metric."""

    metric: str
    status: str                     # "pass" | "fail" | "skip"
    baseline: Optional[float]
    candidate: Optional[float]
    limit: str
    reason: str

    @property
    def failed(self) -> bool:
        return self.status == "fail"


def default_thresholds() -> List[Threshold]:
    """The stock gate: stage slowdown, RAM growth, and ledger memory drift.

    Stage wall time may grow ≤ 75 % (smoke runs are noisy; a genuine 2×
    slowdown still trips it) and is only judged on stages that took at
    least 20 ms at baseline. Per-stage RAM growth may grow ≤ 50 % once it
    exceeds 64 MiB. The allocation ledger's accounted peak
    (``memory.peak_bytes``, byte-exact and far less noisy than sampled
    RSS) may grow ≤ 50 % once it exceeds 16 MiB, and total allocated
    bytes ≤ 75 % — together the memory axis of the regression gate.
    Records written before schema v5 have no ``memory`` block, so these
    rules skip (never fail) on pre-observatory baselines.
    """
    return [
        Threshold("stages.*.seconds", max_rel_increase=0.75,
                  ignore_below=0.02),
        Threshold("stages.*.ram_delta_bytes", max_rel_increase=0.5,
                  ignore_below=64 * 2 ** 20),
        Threshold("memory.peak_bytes", max_rel_increase=0.5,
                  ignore_below=16 * 2 ** 20),
        Threshold("memory.total_alloc_bytes", max_rel_increase=0.75,
                  ignore_below=16 * 2 ** 20),
    ]


#: Default home of pinned per-bench threshold files: one
#: ``<experiment>.json`` per gated bench (EXPERIMENTS.md format, i.e.
#: :func:`save_thresholds` output), checked in next to the benchmarks
#: they protect and resolved relative to the repo root.
PINNED_THRESHOLDS_DIR = Path("benchmarks") / "thresholds"


def pinned_thresholds(experiment: Optional[str],
                      directory: Optional[PathLike] = None,
                      ) -> List[Threshold]:
    """Per-bench pinned thresholds, falling back to the stock defaults.

    Looks for ``<directory>/<experiment>.json`` (directory defaults to
    :data:`PINNED_THRESHOLDS_DIR`); a missing file — or no experiment
    name at all — yields :func:`default_thresholds`, so the gate tightens
    per bench as runtimes stabilize without ever loosening below stock.
    """
    directory = Path(directory) if directory is not None \
        else PINNED_THRESHOLDS_DIR
    if experiment:
        path = directory / f"{experiment}.json"
        if path.exists():
            return load_thresholds(path)
    return default_thresholds()


def _expand(threshold: Threshold, baseline: RunRecord, candidate: RunRecord
            ) -> List[str]:
    """Concrete metric paths for a (possibly wildcarded) threshold."""
    parts = threshold.metric.split("*")
    if len(parts) == 1:
        return [threshold.metric]
    if len(parts) != 2:
        raise ValueError(f"at most one '*' per metric path: {threshold.metric!r}")
    prefix = parts[0].rstrip(".")
    suffix = parts[1].lstrip(".")
    keys = set()
    for record in (baseline, candidate):
        node = metric_value(record, prefix) if prefix else record.to_dict()
        if isinstance(node, Mapping):
            keys.update(str(k) for k in node)
    paths = []
    for key in sorted(keys):
        pieces = [p for p in (prefix, key, suffix) if p]
        paths.append(".".join(pieces))
    return paths


def _check_one(threshold: Threshold, path: str,
               baseline: RunRecord, candidate: RunRecord) -> Verdict:
    base = metric_value(baseline, path)
    cand = metric_value(candidate, path)
    base = float(base) if isinstance(base, (int, float)) \
        and not isinstance(base, bool) else None
    cand = float(cand) if isinstance(cand, (int, float)) \
        and not isinstance(cand, bool) else None

    limits = []
    if threshold.max_rel_increase is not None:
        limits.append(f"+{threshold.max_rel_increase:.0%} rel")
    if threshold.max_abs_increase is not None:
        limits.append(f"+{threshold.max_abs_increase:g} abs")
    if threshold.min_value is not None:
        limits.append(f">={threshold.min_value:g}")
    if threshold.max_value is not None:
        limits.append(f"<={threshold.max_value:g}")
    limit = ", ".join(limits) or "(none)"

    if cand is None:
        return Verdict(path, "skip", base, cand, limit,
                       "metric absent in candidate")

    # Absolute bounds need no baseline.
    if threshold.min_value is not None and cand < threshold.min_value:
        return Verdict(path, "fail", base, cand, limit,
                       f"{cand:g} < floor {threshold.min_value:g}")
    if threshold.max_value is not None and cand > threshold.max_value:
        return Verdict(path, "fail", base, cand, limit,
                       f"{cand:g} > ceiling {threshold.max_value:g}")

    relative_rules = (threshold.max_rel_increase is not None
                      or threshold.max_abs_increase is not None)
    if relative_rules:
        if base is None:
            return Verdict(path, "skip", base, cand, limit,
                           "metric absent in baseline")
        if abs(base) < threshold.ignore_below:
            return Verdict(path, "skip", base, cand, limit,
                           f"baseline {base:g} under noise floor "
                           f"{threshold.ignore_below:g}")
        increase = cand - base
        if threshold.max_abs_increase is not None \
                and increase > threshold.max_abs_increase:
            return Verdict(path, "fail", base, cand, limit,
                           f"+{increase:g} > +{threshold.max_abs_increase:g}")
        if threshold.max_rel_increase is not None and base > 0:
            rel = increase / base
            if rel > threshold.max_rel_increase:
                return Verdict(path, "fail", base, cand, limit,
                               f"+{rel:.0%} > +{threshold.max_rel_increase:.0%}")
    return Verdict(path, "pass", base, cand, limit, "")


def evaluate_pair(baseline: RunRecord, candidate: RunRecord,
                  thresholds: Optional[Sequence[Threshold]] = None,
                  ) -> List[Verdict]:
    """Apply thresholds to a (baseline, candidate) record pair."""
    thresholds = list(thresholds) if thresholds is not None \
        else default_thresholds()
    verdicts: List[Verdict] = []
    for threshold in thresholds:
        for path in _expand(threshold, baseline, candidate):
            verdicts.append(_check_one(threshold, path, baseline, candidate))
    return verdicts


def evaluate_registry(spec: str,
                      thresholds: Optional[Sequence[Threshold]] = None,
                      registry_dir: Optional[PathLike] = None,
                      ) -> Tuple[List[Verdict], RunRecord, RunRecord]:
    """Gate the two most recent registry runs matching ``spec``."""
    registry = RunRegistry(registry_dir)
    baseline, candidate = registry.resolve_pair(spec)
    return evaluate_pair(baseline, candidate, thresholds), baseline, candidate


def passed(verdicts: Sequence[Verdict]) -> bool:
    """True when no verdict failed (skips do not fail the gate)."""
    return not any(v.failed for v in verdicts)


def render_verdict_table(verdicts: Sequence[Verdict]) -> str:
    """The gate table: one row per checked metric, FAIL rows first."""
    from .report import _table

    if not verdicts:
        return "-- regression verdicts --\n(no thresholds evaluated)"
    order = {"fail": 0, "pass": 1, "skip": 2}
    ranked = sorted(verdicts, key=lambda v: (order.get(v.status, 3), v.metric))
    rows = []
    for verdict in ranked:
        rows.append([
            verdict.status.upper(),
            verdict.metric,
            "-" if verdict.baseline is None else f"{verdict.baseline:.6g}",
            "-" if verdict.candidate is None else f"{verdict.candidate:.6g}",
            verdict.limit,
            verdict.reason,
        ])
    failures = sum(1 for v in verdicts if v.failed)
    title = ("regression verdicts: "
             + (f"{failures} FAILURE(S)" if failures else "all clear"))
    return _table(["verdict", "metric", "baseline", "candidate", "limit",
                   "reason"], rows, title)


def load_thresholds(path: PathLike) -> List[Threshold]:
    """Read a JSON threshold list (the EXPERIMENTS.md pinning format)."""
    payload = json.loads(Path(path).read_text())
    if isinstance(payload, Mapping):
        payload = payload.get("thresholds", [])
    return [Threshold.from_dict(item) for item in payload]


def save_thresholds(thresholds: Sequence[Threshold], path: PathLike) -> Path:
    """Write thresholds as JSON, round-trippable by :func:`load_thresholds`."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"thresholds": [t.to_dict() for t in thresholds]}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
