"""Run manifests: the reproducibility record next to every result file.

A manifest pins everything needed to re-run the row: the exact config and
seed, the git commit of the code, the platform (interpreter, OS, numpy /
scipy versions), and content fingerprints of the datasets consumed. It is
deliberately free of timestamps and hostnames so that two runs of the same
code with the same seed produce byte-identical manifests — determinism the
test suite asserts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

import numpy as np
import scipy

PathLike = Union[str, Path]

MANIFEST_SUFFIX = ".manifest.json"


def git_sha(cwd: Optional[PathLike] = None) -> Optional[str]:
    """Current git commit hash, or ``None`` outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def platform_info() -> Dict[str, str]:
    """Interpreter / OS / core-dependency versions (no hostnames)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "os": platform.system(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
    }


def hardware_info() -> Dict[str, int]:
    """Host capacity snapshot: logical CPU count and total RAM in bytes.

    Makes registry diffs across machines interpretable — a 2× stage
    slowdown means something different on a 4-core laptop than on the
    64-core bench host. Stable on one machine (so manifests stay
    deterministic there) and deliberately excluded from the config
    fingerprint, like the rest of the platform block. Unknown values
    report 0 rather than failing the manifest build.
    """
    info = {"cpu_count": os.cpu_count() or 0, "total_ram_bytes": 0}
    try:
        info["total_ram_bytes"] = (int(os.sysconf("SC_PHYS_PAGES"))
                                   * int(os.sysconf("SC_PAGE_SIZE")))
    except (AttributeError, ValueError, OSError):
        pass  # non-POSIX or sysconf key missing
    return info


def dataset_fingerprint(graph) -> str:
    """Content hash of a :class:`~repro.graph.graph.Graph` (sha256, hex).

    Covers topology (CSR index arrays + values), features, and labels, so
    any change to the synthesized data — scale, seed, generator — changes
    the fingerprint.
    """
    digest = hashlib.sha256()
    adjacency = graph.adjacency.tocsr()
    digest.update(np.ascontiguousarray(adjacency.indptr).tobytes())
    digest.update(np.ascontiguousarray(adjacency.indices).tobytes())
    digest.update(np.ascontiguousarray(adjacency.data).tobytes())
    for array in (graph.features, graph.labels):
        if array is not None:
            digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _plain(value):
    """Reduce configs to JSON-stable plain data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _plain(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def build_manifest(
    config: Optional[object] = None,
    seed: Optional[int] = None,
    datasets: Optional[Mapping[str, str]] = None,
    extra: Optional[Mapping] = None,
) -> Dict:
    """Assemble the deterministic manifest dict.

    Parameters
    ----------
    config:
        Any mapping or dataclass (e.g. :class:`repro.training.TrainConfig`).
    seed:
        The run's master seed, surfaced at top level for grepability.
    datasets:
        ``name -> fingerprint`` map from :func:`dataset_fingerprint`.
    extra:
        Free-form additions (experiment name, CLI argv, artifact label).
    """
    from .. import __version__

    manifest: Dict = {
        "schema": "repro.telemetry.manifest/v1",
        "repro_version": __version__,
        "git_sha": git_sha(Path(__file__).resolve().parent),
        "platform": platform_info(),
        "hardware": hardware_info(),
        "seed": None if seed is None else int(seed),
        "config": _plain(config) if config is not None else None,
        "datasets": dict(sorted((datasets or {}).items())),
    }
    if extra:
        manifest.update({str(k): _plain(v) for k, v in extra.items()})
    return manifest


def manifest_path_for(result_path: PathLike) -> Path:
    """``results/eff.json`` → ``results/eff.manifest.json`` sidecar path."""
    path = Path(result_path)
    return path.with_name(path.stem + MANIFEST_SUFFIX)


def write_manifest(path: PathLike, manifest: Mapping) -> Path:
    """Write a manifest dict as stable, sorted-key JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def read_manifest(path: PathLike) -> Dict:
    """Load a manifest written by :func:`write_manifest`."""
    return json.loads(Path(path).read_text())
