"""Live sweep telemetry: worker heartbeats, stall detection, watch line.

The pooled sweep executor (:mod:`repro.runtime.pool`) is opaque while it
runs: the parent learns a cell hung only when the ``--cell-timeout`` kill
fires, and memory peaks are reconstructed post-hoc from span deltas. This
module adds a *streaming* side channel between workers and the parent:

- **Worker side** — each cell attempt gets a :class:`LiveEmitter` writing
  small best-effort events (``cell_start``, throttled ``heartbeat`` ticks
  with counter deltas, sampled ``rss`` watermarks from a
  :class:`RssSampler` daemon thread) over the attempt's dedicated side
  pipe. Instrumented code (the per-epoch trainer hook) calls
  :func:`tick`, a one-global-check no-op when no emitter is installed.
- **Parent side** — the pool's scheduler loop drains the side pipes
  without blocking and feeds a :class:`SweepMonitor`, which aggregates a
  live sweep state (cells running/ok/failed/retrying, per-attempt
  last-heartbeat age, RSS watermarks per worker), flags a **stall** when
  an attempt's heartbeat goes silent for a configurable fraction of the
  cell timeout — *strictly before* the timeout kill — and renders either
  a ``--watch`` TTY status line or a ``live.jsonl`` event stream through
  the ordinary :class:`~repro.telemetry.sinks.EventSink` hierarchy.

Determinism discipline: live events are observability, never payload.
They travel on their own pipe, land on their own sink, and the counters
they touch (``live.*``) are outside
:func:`repro.bench.io.deterministic_counters`, so the serial≡parallel
byte-identity gates are untouched by live monitoring being on or off.

The post-run Chrome-trace exporter over these events lives in
:mod:`repro.telemetry.trace_export`.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .rss import current_rss_bytes as _rss_bytes
from .sinks import EventSink, NullSink

#: Schema tag stamped into ``sweep_start`` events (and the live.jsonl docs).
LIVE_SCHEMA = "repro.telemetry.live/v1"

#: Cell-finish statuses the monitor distinguishes beyond the pool's own
#: terminal set: a failed attempt that will run again reports RETRYING.
RETRYING = "retrying"


# ======================================================================
# worker side
# ======================================================================
class LiveEmitter:
    """Best-effort event writer for one cell attempt.

    ``send`` is any callable taking one event dict — a pipe connection's
    ``send`` in a pooled worker, the monitor's :meth:`SweepMonitor.
    handle_event` in inline mode. Every event is stamped with the cell
    label, attempt number, worker pid, and a wall-clock ``t``. A failed
    send (parent gone, pipe full and sheared) permanently detaches the
    emitter: live telemetry must never crash or block a cell.
    """

    def __init__(self, send: Callable[[Dict], None], cell: str,
                 attempt: int = 1, min_interval_s: float = 0.05):
        self._send = send
        self.cell = cell
        self.attempt = int(attempt)
        self.min_interval_s = float(min_interval_s)
        self.pid = os.getpid()
        self.detached = False
        self._lock = threading.Lock()
        self._last_sent: Dict[str, float] = {}
        self._counter_base: Dict[str, float] = {}

    def emit(self, event_type: str, **fields) -> None:
        """Send one event (never raises; detaches on a dead channel)."""
        if self.detached:
            return
        event = {"type": event_type, "cell": self.cell,
                 "attempt": self.attempt, "pid": self.pid,
                 "t": round(time.time(), 6)}
        event.update(fields)
        try:
            with self._lock:
                self._send(event)
        except Exception:
            self.detached = True

    def heartbeat(self, kind: str = "tick", **fields) -> None:
        """Throttled progress tick, annotated with op-counter deltas.

        At most one heartbeat per ``min_interval_s`` goes out (the first
        always does); each carries the change in every telemetry counter
        since the previous heartbeat, so the parent can rank stragglers
        by *rate of progress*, not just wall age.
        """
        if self.detached:
            return
        now = time.monotonic()
        last = self._last_sent.get("heartbeat")
        if last is not None and now - last < self.min_interval_s:
            return
        self._last_sent["heartbeat"] = now
        self.emit("heartbeat", kind=kind,
                  counters=self._counter_deltas() or None, **fields)

    def _counter_deltas(self) -> Dict[str, float]:
        from . import get_metrics  # deferred: package init imports us

        registry = get_metrics()
        if registry is None:
            return {}
        values = registry.counter_values()
        deltas = {name: value - self._counter_base.get(name, 0)
                  for name, value in values.items()
                  if value != self._counter_base.get(name, 0)}
        self._counter_base = values
        return deltas

    def detach(self) -> None:
        """Stop sending (the channel is owned by the caller, not closed)."""
        self.detached = True


class RssSampler(threading.Thread):
    """Daemon thread sampling this process's RSS onto a live emitter.

    Emits one ``rss`` event per ``interval_s`` with the instantaneous
    value and the running watermark — the sampled memory timeline the
    paper's OOM accounting needs, at a cost of one /proc read per tick.
    """

    def __init__(self, emitter: LiveEmitter, interval_s: float = 0.2):
        super().__init__(name="live-rss-sampler", daemon=True)
        self.emitter = emitter
        self.interval_s = float(interval_s)
        self.watermark = 0
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            rss = _rss_bytes()
            if rss > self.watermark:
                self.watermark = rss
            self.emitter.emit("rss", rss_bytes=rss,
                              watermark_bytes=self.watermark)

    def stop(self) -> None:
        self._stop_event.set()


#: The attempt-scoped emitter instrumented code reaches through
#: :func:`tick`. One per process at a time (a worker runs one attempt).
_emitter: Optional[LiveEmitter] = None


def install_emitter(emitter: LiveEmitter) -> LiveEmitter:
    """Make ``emitter`` the process-wide emitter ``tick()`` routes to."""
    global _emitter
    _emitter = emitter
    return emitter


def uninstall_emitter() -> None:
    """Detach the process-wide emitter; ``tick()`` becomes a no-op."""
    global _emitter
    _emitter = None


def current_emitter() -> Optional[LiveEmitter]:
    """The installed emitter, or ``None`` outside a worker session."""
    return _emitter


def tick(kind: str = "tick", **fields) -> None:
    """Heartbeat from instrumented code; one-global-check no-op otherwise.

    The per-epoch trainer hook calls this on every epoch, so any cell
    that is actually training produces a heartbeat stream regardless of
    how chatty its spans are.
    """
    emitter = _emitter
    if emitter is not None:
        emitter.heartbeat(kind, **fields)


@contextmanager
def worker_session(send: Optional[Callable[[Dict], None]], cell: str,
                   attempt: int = 1, rss_interval_s: float = 0.2):
    """Live-telemetry scope of one cell attempt (worker or inline).

    Installs the emitter, announces ``cell_start``, runs the RSS sampler
    for the duration, and on exit ships a final ``rss`` watermark before
    detaching. With ``send=None`` (live monitoring off) the body runs
    with zero live machinery.
    """
    if send is None:
        yield None
        return
    emitter = install_emitter(LiveEmitter(send, cell, attempt))
    sampler = RssSampler(emitter, interval_s=rss_interval_s)
    emitter.emit("cell_start")
    sampler.start()
    try:
        yield emitter
    finally:
        sampler.stop()
        sampler.join(timeout=1.0)
        rss = _rss_bytes()
        emitter.emit("rss", rss_bytes=rss,
                     watermark_bytes=max(sampler.watermark, rss))
        uninstall_emitter()
        emitter.detach()


# ======================================================================
# parent side
# ======================================================================
@dataclass(frozen=True)
class LiveConfig:
    """Policy knobs for :class:`SweepMonitor`.

    Parameters
    ----------
    stall_fraction:
        An attempt is flagged stalled once its heartbeat has been silent
        for this fraction of the cell timeout — before the kill fires
        (hence the < 1 bound the CLI enforces).
    stall_after_s:
        Absolute silence threshold in seconds, overriding the fraction;
        also the only way to get stall detection without a cell timeout.
    watch:
        Render the single-line TTY status to ``out`` while running.
    watch_interval_s:
        Minimum seconds between watch-line repaints.
    rss_interval_s:
        Worker-side RSS sampling period.
    """

    stall_fraction: float = 0.5
    stall_after_s: Optional[float] = None
    watch: bool = False
    watch_interval_s: float = 0.25
    rss_interval_s: float = 0.2


class SweepMonitor:
    """Parent-side aggregation of one sweep's live event stream.

    The pool's scheduler feeds it (``attempt_launched`` at spawn, drained
    pipe events through ``handle_event``, ``cell_finished`` at terminal
    or retry transitions, ``check`` every loop iteration); the monitor
    normalizes everything onto ``sink`` — the ``live.jsonl`` stream —
    maintains the aggregate state the watch line renders, and raises
    ``stall`` events for silent attempts. All entry points are
    thread-safe: inline mode delivers events from the RSS sampler thread.
    """

    def __init__(self, sink: Optional[EventSink] = None,
                 config: Optional[LiveConfig] = None,
                 out=None, clock: Callable[[], float] = time.monotonic,
                 wall: Callable[[], float] = time.time):
        self.sink = sink or NullSink()
        self.config = config or LiveConfig()
        self.out = sys.stderr if out is None else out
        self._clock = clock
        self._wall = wall
        self._lock = threading.RLock()
        self.total_cells = 0
        self.workers = 1
        self.cell_timeout: Optional[float] = None
        self.ok = 0
        self.cached = 0
        self.failed = 0
        self.retried = 0
        self.heartbeats: Dict[str, int] = {}
        self.stalls: List[Dict] = []
        self.rss_watermarks: Dict[int, int] = {}
        self._active: Dict[Tuple[str, int], Dict] = {}
        self._last_render = float("-inf")
        self._render_width = 0
        self._closed = False

    # -- sweep lifecycle ------------------------------------------------
    def sweep_started(self, cells: int, workers: int,
                      cell_timeout: Optional[float] = None) -> None:
        with self._lock:
            self.total_cells = int(cells)
            self.workers = int(workers)
            self.cell_timeout = cell_timeout
            self._emit({"type": "sweep_start", "schema": LIVE_SCHEMA,
                        "cells": int(cells), "workers": int(workers),
                        "cell_timeout": cell_timeout,
                        "stall_threshold_s": self.stall_threshold()})

    def sweep_finished(self, stats: Optional[Dict] = None) -> None:
        with self._lock:
            self._emit({"type": "sweep_finish", "summary": self.summary(),
                        "pool": dict(stats) if stats else None})
            self._render(final=True)
            self.sink.flush()

    # -- attempt lifecycle (called by the pool scheduler) ---------------
    def attempt_launched(self, cell: str, attempt: int) -> None:
        now = self._clock()
        with self._lock:
            self._active[(cell, int(attempt))] = {
                "cell": cell, "attempt": int(attempt), "pid": None,
                "started": now, "last": now, "stalled": False,
                "rss_watermark": 0,
            }
            self._emit({"type": "cell_launch", "cell": cell,
                        "attempt": int(attempt)})
            self._render()

    def handle_event(self, event: Dict) -> None:
        """Ingest one worker-side event (heartbeat / cell_start / rss).

        Only *progress* events (``cell_start``, ``heartbeat``) reset the
        stall clock: the RSS sampler thread keeps ticking inside a hung
        cell, so counting its samples as liveness would mask exactly the
        stalls this monitor exists to flag.
        """
        with self._lock:
            key = (event.get("cell"), int(event.get("attempt") or 1))
            entry = self._active.get(key)
            if entry is not None:
                if event.get("type") in ("cell_start", "heartbeat"):
                    entry["last"] = self._clock()
                pid = event.get("pid")
                if pid is not None:
                    entry["pid"] = pid
            if event.get("type") == "heartbeat":
                cell = event.get("cell")
                self.heartbeats[cell] = self.heartbeats.get(cell, 0) + 1
            elif event.get("type") == "rss":
                watermark = int(event.get("watermark_bytes") or 0)
                pid = event.get("pid")
                if entry is not None and watermark > entry["rss_watermark"]:
                    entry["rss_watermark"] = watermark
                if pid is not None and watermark > self.rss_watermarks.get(pid, 0):
                    self.rss_watermarks[pid] = watermark
            self._emit(dict(event))
            self._render()

    def cell_finished(self, cell: str, attempt: int, status: str,
                      seconds: float) -> None:
        with self._lock:
            entry = self._active.pop((cell, int(attempt)), None)
            if status == "ok":
                self.ok += 1
            elif status == "cached":
                self.cached += 1
            elif status == RETRYING:
                self.retried += 1
            else:
                self.failed += 1
            self._emit({"type": "cell_finish", "cell": cell,
                        "attempt": int(attempt), "status": status,
                        "seconds": round(float(seconds), 6),
                        "pid": entry.get("pid") if entry else None,
                        "stalled": entry.get("stalled") if entry else None})
            self._render()

    # -- stall detection ------------------------------------------------
    def stall_threshold(self) -> Optional[float]:
        """Silence (seconds) after which an attempt counts as stalled."""
        if self.config.stall_after_s is not None:
            return float(self.config.stall_after_s)
        if self.cell_timeout is not None:
            return float(self.cell_timeout) * self.config.stall_fraction
        return None

    def check(self, now: Optional[float] = None) -> List[Dict]:
        """Scan active attempts for silence; emit each stall exactly once.

        Returns the stall events raised by *this* scan (empty normally).
        Called by the scheduler on every loop iteration, i.e. strictly
        more often than the timeout check that kills the attempt.
        """
        threshold = self.stall_threshold()
        raised: List[Dict] = []
        with self._lock:
            now = self._clock() if now is None else now
            if threshold is not None:
                for entry in self._active.values():
                    silent = now - entry["last"]
                    if silent >= threshold and not entry["stalled"]:
                        entry["stalled"] = True
                        event = {"type": "stall", "cell": entry["cell"],
                                 "attempt": entry["attempt"],
                                 "pid": entry["pid"],
                                 "silent_s": round(silent, 3),
                                 "threshold_s": round(threshold, 3)}
                        self.stalls.append(event)
                        raised.append(event)
                        self._emit(dict(event))
            self._render(now=now)
        return raised

    # -- aggregate views ------------------------------------------------
    def summary(self) -> Dict:
        """Flat sweep-state snapshot (the ``sweep_finish`` payload)."""
        with self._lock:
            return {
                "cells": self.total_cells,
                "done": self.ok + self.cached + self.failed,
                "ok": self.ok,
                "cached": self.cached,
                "failed": self.failed,
                "retried": self.retried,
                "running": len(self._active),
                "stalls": len(self.stalls),
                "heartbeats": sum(self.heartbeats.values()),
                "cells_with_heartbeats": len(self.heartbeats),
                "rss_watermark_bytes":
                    max(self.rss_watermarks.values(), default=0),
            }

    def running_cells(self, now: Optional[float] = None) -> List[Dict]:
        """Active attempts, longest-running first (straggler ranking)."""
        with self._lock:
            now = self._clock() if now is None else now
            entries = sorted(self._active.values(),
                             key=lambda e: e["started"])
            return [{"cell": e["cell"], "attempt": e["attempt"],
                     "pid": e["pid"], "running_s": round(now - e["started"], 3),
                     "heartbeat_age_s": round(now - e["last"], 3),
                     "stalled": e["stalled"],
                     "rss_watermark_bytes": e["rss_watermark"]}
                    for e in entries]

    # -- rendering / teardown -------------------------------------------
    def _emit(self, event: Dict) -> None:
        event.setdefault("t", round(self._wall(), 6))
        self.sink.emit(event)

    def _render(self, now: Optional[float] = None, final: bool = False) -> None:
        if not self.config.watch or self.out is None or self._closed:
            return
        now = self._clock() if now is None else now
        if not final and now - self._last_render < self.config.watch_interval_s:
            return
        self._last_render = now
        line = self.render_line(now)
        self._render_width = max(self._render_width, len(line))
        try:
            self.out.write("\r" + line.ljust(self._render_width)
                           + ("\n" if final else ""))
            self.out.flush()
        except (OSError, ValueError):  # closed stream: stop rendering
            self._closed = True

    def render_line(self, now: Optional[float] = None) -> str:
        """The one-line live status (also what ``--watch`` prints)."""
        with self._lock:
            now = self._clock() if now is None else now
            done = self.ok + self.cached + self.failed
            parts = [f"[sweep {done}/{self.total_cells}]",
                     f"ok:{self.ok}", f"fail:{self.failed}"]
            if self.cached:
                parts.append(f"cached:{self.cached}")
            if self.retried:
                parts.append(f"retry:{self.retried}")
            if self.stalls:
                parts.append(f"stall:{len(self.stalls)}")
            for entry in self.running_cells(now)[:2]:
                flag = "!" if entry["stalled"] else ""
                parts.append(f"{flag}{entry['cell']}#{entry['attempt']} "
                             f"{entry['running_s']:.0f}s "
                             f"hb{entry['heartbeat_age_s']:.1f}s")
            peak = max(self.rss_watermarks.values(), default=0)
            if peak:
                parts.append(f"rss:{peak / 2**20:.0f}MiB")
            return " ".join(parts)[:140]

    def close(self) -> None:
        """Flush and close the sink (idempotent; ends the watch line)."""
        with self._lock:
            self._render(final=True)
            self._closed = True
        self.sink.close()


#: The sweep-scoped monitor the pool executor reaches for. Installed by
#: the bench CLI via :func:`monitoring` around the experiment runner.
_monitor: Optional[SweepMonitor] = None


def install_monitor(monitor: SweepMonitor) -> SweepMonitor:
    """Make ``monitor`` discoverable by ``execute_cells`` via this module."""
    global _monitor
    _monitor = monitor
    return monitor


def uninstall_monitor() -> None:
    """Detach the session monitor; sweeps run unobserved again."""
    global _monitor
    _monitor = None


def current_monitor() -> Optional[SweepMonitor]:
    """The installed sweep monitor, or ``None`` when not monitoring."""
    return _monitor


@contextmanager
def monitoring(monitor: SweepMonitor):
    """Scope a sweep under live monitoring; closes the sink on exit."""
    install_monitor(monitor)
    try:
        yield monitor
    finally:
        uninstall_monitor()
        monitor.close()
