"""Exception hierarchy for the spectral GNN benchmark library.

All library-specific failures derive from :class:`ReproError` so callers can
catch the whole family with one clause. The benchmark harness additionally
treats :class:`DeviceOOMError` specially: a run that raises it is reported
as ``(OOM)`` in the result tables, mirroring the presentation in the paper.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised for malformed graph inputs (bad shapes, dangling edges, ...)."""


class FilterError(ReproError):
    """Raised for invalid spectral-filter configuration or usage."""


class AutodiffError(ReproError):
    """Raised for invalid autodiff-graph operations (shape/grad misuse)."""


class DatasetError(ReproError):
    """Raised when a dataset specification cannot be satisfied."""


class TrainingError(ReproError):
    """Raised for invalid training-scheme configuration."""


class DeviceOOMError(ReproError):
    """Raised when the simulated accelerator runs out of memory.

    Mirrors a CUDA out-of-memory error: the benchmark harness catches this
    and records the run as ``(OOM)`` instead of failing the whole sweep.
    """

    def __init__(self, requested_bytes: int, used_bytes: int, capacity_bytes: int):
        self.requested_bytes = requested_bytes
        self.used_bytes = used_bytes
        self.capacity_bytes = capacity_bytes
        super().__init__(
            f"device out of memory: requested {requested_bytes} B with "
            f"{used_bytes} B in use of {capacity_bytes} B capacity"
        )
