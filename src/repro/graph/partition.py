"""BFS-based graph partitioning for the graph-partition (GP) scheme.

The paper contrasts the mini-batch scheme with model-agnostic graph
partitioning (Section 2.2): the graph is cut into roughly equal clusters
that are trained as independent subgraphs, which keeps memory bounded but
severs cross-cluster edges and degrades expressiveness. This module
implements a lightweight METIS-style partitioner: seeded BFS growth with a
size cap, which produces contiguous, balanced clusters.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from ..errors import GraphError
from .graph import Graph


def bfs_partition(
    graph: Graph,
    num_parts: int,
    rng: np.random.Generator | None = None,
) -> List[np.ndarray]:
    """Partition nodes into ``num_parts`` contiguous clusters via capped BFS.

    Returns a list of node-index arrays covering all nodes exactly once,
    every part non-empty. Clusters are grown breadth-first from random
    unassigned seeds up to a balanced size cap; leftovers (disconnected
    components the BFS never reached) attach to the smallest cluster, and
    a final rebalance pass steals nodes from the largest clusters so no
    part comes back empty. A requested ``num_parts`` larger than the node
    count is clamped to ``n`` (yielding singleton parts) rather than
    raising — the caller asked for "as many parts as possible".
    """
    if num_parts < 1:
        raise GraphError(f"num_parts must be >= 1, got {num_parts}")
    n = graph.num_nodes
    if n == 0:
        raise GraphError("cannot partition an empty graph")
    num_parts = min(num_parts, n)
    rng = rng or np.random.default_rng()
    cap = int(np.ceil(n / num_parts))
    indptr, indices = graph.adjacency.indptr, graph.adjacency.indices

    assignment = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    cursor = 0
    parts: List[list] = []
    for part_id in range(num_parts):
        # Find an unassigned seed.
        while cursor < n and assignment[order[cursor]] >= 0:
            cursor += 1
        if cursor >= n:
            parts.append([])
            continue
        seed = order[cursor]
        members: list = []
        queue = deque([seed])
        assignment[seed] = part_id
        while queue and len(members) < cap:
            node = queue.popleft()
            members.append(node)
            for neighbour in indices[indptr[node]:indptr[node + 1]]:
                if assignment[neighbour] < 0 and len(members) + len(queue) < cap:
                    assignment[neighbour] = part_id
                    queue.append(neighbour)
        # Nodes admitted to the queue but not dequeued still belong here.
        members.extend(queue)
        parts.append(members)

    # Attach any stragglers (disconnected leftovers) round-robin to the
    # smallest parts so every node is covered.
    leftovers = np.flatnonzero(assignment < 0)
    for node in leftovers:
        smallest = min(range(num_parts), key=lambda i: len(parts[i]))
        parts[smallest].append(node)
        assignment[node] = smallest

    # Rebalance: a BFS sweep that exhausted the node supply early (or a
    # num_parts close to n) can leave empty parts behind. Steal frontier
    # nodes from the currently-largest part until every part is non-empty;
    # num_parts <= n guarantees termination.
    for part_id in range(num_parts):
        while not parts[part_id]:
            largest = max(range(num_parts), key=lambda i: len(parts[i]))
            stolen = parts[largest].pop()
            parts[part_id].append(stolen)
            assignment[stolen] = part_id

    return [np.sort(np.asarray(part, dtype=np.int64)) for part in parts]


def cut_fraction(graph: Graph, parts: List[np.ndarray]) -> float:
    """Fraction of directed edges severed by a partition, in ``[0, 1]``."""
    return cut_edges(graph, parts) / max(graph.num_edges, 1)


def cut_edges(graph: Graph, parts: List[np.ndarray]) -> int:
    """Count directed edges severed by a partition (expressiveness loss proxy)."""
    assignment = np.empty(graph.num_nodes, dtype=np.int64)
    for part_id, part in enumerate(parts):
        assignment[part] = part_id
    coo = graph.adjacency.tocoo()
    return int((assignment[coo.row] != assignment[coo.col]).sum())
