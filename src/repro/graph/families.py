"""Canonical graph families with analytically known spectra.

Spectral graph theory gives closed forms for the Laplacian spectra of
cycles, paths, complete graphs, stars, and grids. These constructors are
the ground truth the test suite checks the whole spectral substrate
against (normalization, eigendecomposition, filter responses), and they
make controlled spectral experiments easy — e.g. a cycle concentrates its
spectrum at cos-spaced frequencies, a star has an extreme degree split for
degree-bias studies.

Closed forms below are for the *unnormalized* structure; the exposed
helpers return spectra of the self-loop-free symmetric-normalized
Laplacian ``I − D^{-1/2} A D^{-1/2}`` where a closed form exists
(regular graphs: cycle, complete; plus the star's known two-sided form).
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .graph import Graph


def cycle_graph(num_nodes: int) -> Graph:
    """C_n: 2-regular ring; normalized-Laplacian spectrum 1 − cos(2πk/n)."""
    if num_nodes < 3:
        raise GraphError(f"a cycle needs >= 3 nodes, got {num_nodes}")
    nodes = np.arange(num_nodes)
    edges = np.stack([nodes, (nodes + 1) % num_nodes], axis=1)
    return Graph.from_edges(num_nodes, edges, name=f"cycle{num_nodes}")


def cycle_spectrum(num_nodes: int) -> np.ndarray:
    """Exact spectrum of C_n's normalized Laplacian (no self-loops)."""
    k = np.arange(num_nodes)
    return np.sort(1.0 - np.cos(2.0 * np.pi * k / num_nodes))


def path_graph(num_nodes: int) -> Graph:
    """P_n: a simple path."""
    if num_nodes < 2:
        raise GraphError(f"a path needs >= 2 nodes, got {num_nodes}")
    nodes = np.arange(num_nodes - 1)
    edges = np.stack([nodes, nodes + 1], axis=1)
    return Graph.from_edges(num_nodes, edges, name=f"path{num_nodes}")


def complete_graph(num_nodes: int) -> Graph:
    """K_n: everything connected; spectrum {0, n/(n−1) × (n−1 times)}."""
    if num_nodes < 2:
        raise GraphError(f"a complete graph needs >= 2 nodes, got {num_nodes}")
    rows, cols = np.triu_indices(num_nodes, k=1)
    edges = np.stack([rows, cols], axis=1)
    return Graph.from_edges(num_nodes, edges, name=f"complete{num_nodes}")


def complete_spectrum(num_nodes: int) -> np.ndarray:
    """Exact normalized-Laplacian spectrum of K_n (no self-loops)."""
    spectrum = np.full(num_nodes, num_nodes / (num_nodes - 1.0))
    spectrum[0] = 0.0
    return spectrum


def star_graph(num_leaves: int) -> Graph:
    """S_k: one hub, k leaves; spectrum {0, 1 × (k−1 times), 2}."""
    if num_leaves < 1:
        raise GraphError(f"a star needs >= 1 leaf, got {num_leaves}")
    leaves = np.arange(1, num_leaves + 1)
    edges = np.stack([np.zeros_like(leaves), leaves], axis=1)
    return Graph.from_edges(num_leaves + 1, edges, name=f"star{num_leaves}")


def star_spectrum(num_leaves: int) -> np.ndarray:
    """Exact normalized-Laplacian spectrum of the star (no self-loops)."""
    spectrum = np.ones(num_leaves + 1)
    spectrum[0] = 0.0
    spectrum[-1] = 2.0
    return spectrum


def grid_graph(rows: int, cols: int) -> Graph:
    """rows×cols 4-neighbour lattice."""
    if rows < 1 or cols < 1:
        raise GraphError(f"grid needs positive dimensions, got {rows}x{cols}")
    if rows * cols < 2:
        raise GraphError("grid needs at least 2 nodes")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return Graph.from_edges(rows * cols, np.asarray(edges),
                            name=f"grid{rows}x{cols}")


def barbell_graph(clique_size: int, bridge_length: int = 1) -> Graph:
    """Two cliques joined by a path: a small spectral gap by construction.

    The bottleneck makes λ₂ (the algebraic connectivity) tiny — useful for
    exercising filters on near-disconnected structure.
    """
    if clique_size < 3:
        raise GraphError(f"cliques need >= 3 nodes, got {clique_size}")
    if bridge_length < 0:
        raise GraphError("bridge_length must be >= 0")
    edges = []
    for offset in (0, clique_size + bridge_length):
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((offset + i, offset + j))
    chain = [clique_size - 1] + [clique_size + i for i in range(bridge_length)] \
        + [clique_size + bridge_length]
    for a, b in zip(chain[:-1], chain[1:]):
        edges.append((a, b))
    total = 2 * clique_size + bridge_length
    return Graph.from_edges(total, np.asarray(edges),
                            name=f"barbell{clique_size}+{bridge_length}")


FAMILIES = {
    "cycle": cycle_graph,
    "path": path_graph,
    "complete": complete_graph,
    "star": star_graph,
}
