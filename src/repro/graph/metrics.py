"""Graph-level measures used throughout the benchmark.

Implements the node-homophily score of Pei et al. (the ``H`` column of the
paper's Table 3), edge homophily, degree-group assignment for the
degree-specific evaluation (Section 6.3), and the Rayleigh quotient used to
summarize how high-frequency a signal is with respect to a graph.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from ..errors import GraphError
from .graph import Graph


def node_homophily(graph: Graph, labels: np.ndarray | None = None) -> float:
    """Average fraction of same-label neighbours per node.

    ``H = (1/n) Σ_u |{v ∈ N(u) : y(v) = y(u)}| / |N(u)|``; isolated nodes
    are skipped. Values near 1 indicate homophily, near 0 heterophily.
    """
    labels = _resolve_labels(graph, labels)
    adj = graph.adjacency.tocoo()
    same = (labels[adj.row] == labels[adj.col]).astype(np.float64)
    same_counts = np.bincount(adj.row, weights=same, minlength=graph.num_nodes)
    degrees = graph.degrees
    mask = degrees > 0
    if not mask.any():
        raise GraphError("homophily undefined on an edgeless graph")
    return float((same_counts[mask] / degrees[mask]).mean())


def edge_homophily(graph: Graph, labels: np.ndarray | None = None) -> float:
    """Fraction of edges joining same-label endpoints."""
    labels = _resolve_labels(graph, labels)
    adj = graph.adjacency.tocoo()
    if adj.nnz == 0:
        raise GraphError("homophily undefined on an edgeless graph")
    return float((labels[adj.row] == labels[adj.col]).mean())


def degree_groups(graph: Graph, quantile: float = 0.5) -> Tuple[np.ndarray, np.ndarray]:
    """Split nodes into (high-degree, low-degree) index arrays.

    Nodes at or above the ``quantile`` of the degree distribution form the
    high-degree group — the grouping behind Figure 9's accuracy gaps.
    """
    degrees = graph.degrees
    threshold = np.quantile(degrees, quantile)
    high = np.flatnonzero(degrees >= threshold)
    low = np.flatnonzero(degrees < threshold)
    return high, low


def rayleigh_quotient(graph: Graph, signal: np.ndarray, rho: float = 0.5) -> float:
    """Spectral-frequency summary ``xᵀ L̃ x / xᵀ x`` of a node signal.

    Small values mean the signal is smooth over edges (low-frequency);
    values approaching 2 indicate an oscillatory, high-frequency signal.
    For a multi-column signal the column-mean quotient is returned.
    """
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim == 1:
        signal = signal[:, None]
    if signal.shape[0] != graph.num_nodes:
        raise GraphError(
            f"signal has {signal.shape[0]} rows for {graph.num_nodes} nodes"
        )
    laplacian = graph.laplacian(rho)
    numerator = np.einsum("nf,nf->f", signal, laplacian @ signal)
    denominator = np.einsum("nf,nf->f", signal, signal)
    denominator = np.maximum(denominator, 1e-12)
    return float(np.mean(numerator / denominator))


def label_frequency_profile(graph: Graph, labels: np.ndarray | None = None) -> float:
    """Rayleigh quotient of the one-hot label matrix.

    A compact scalar describing whether the classification signal is
    low-frequency (homophilous clusters) or high-frequency (heterophilous
    alternation); used by the filter-selection guideline helper.
    """
    labels = _resolve_labels(graph, labels)
    num_classes = int(labels.max()) + 1
    one_hot = np.zeros((graph.num_nodes, num_classes), dtype=np.float64)
    one_hot[np.arange(graph.num_nodes), labels] = 1.0
    one_hot -= one_hot.mean(axis=0, keepdims=True)
    return rayleigh_quotient(graph, one_hot)


def _resolve_labels(graph: Graph, labels: np.ndarray | None) -> np.ndarray:
    if labels is None:
        labels = graph.labels
    if labels is None:
        raise GraphError("labels required but not provided")
    return np.asarray(labels)
