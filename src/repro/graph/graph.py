"""The :class:`Graph` container: CSR topology plus spectral operators.

Notation follows the paper (Section 2.1):

- ``A``  — raw adjacency (no self-loops), symmetric for undirected graphs;
- ``Ā``  — self-looped adjacency ``A + I``;
- ``Ã``  — generalized-normalized adjacency ``D̄^(ρ-1) Ā D̄^(-ρ)`` with the
  normalization coefficient ``ρ ∈ [0, 1]`` (ρ = 1/2 is the symmetric norm);
- ``L̃``  — normalized Laplacian ``I − Ã``, whose eigenvalues live in [0, 2].

Normalized operators are memoized per ``(operator, ρ, self_loops)`` through
the instrumented LRU layer in :mod:`repro.runtime.cache` because every
filter re-uses the same propagation matrix across hops, epochs, and
(filter, scheme) sweep combinations. Memo traffic lands on the
``cache.norm_adj.{hit,miss,evict}`` telemetry counters, and the memo is
bypassed entirely while :func:`repro.runtime.cache.is_enabled` is false
(the bench ``--no-cache`` mode).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..errors import GraphError
from ..runtime import cache as _cache
from ..runtime import shm as _shm


class Graph:
    """An undirected attributed graph backed by scipy CSR matrices.

    Parameters
    ----------
    adjacency:
        ``(n, n)`` sparse adjacency without self-loops. Symmetrized on
        construction unless ``assume_symmetric`` is set.
    features:
        Optional ``(n, F)`` node-attribute matrix.
    labels:
        Optional ``(n,)`` integer label vector.
    """

    def __init__(
        self,
        adjacency: sp.spmatrix,
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        assume_symmetric: bool = False,
        name: str = "graph",
    ):
        adjacency = adjacency.tocsr().astype(np.float32)
        if adjacency.shape[0] != adjacency.shape[1]:
            raise GraphError(f"adjacency must be square, got {adjacency.shape}")
        adjacency.setdiag(0)
        adjacency.eliminate_zeros()
        if not assume_symmetric:
            adjacency = adjacency.maximum(adjacency.T)
        self.adjacency: sp.csr_matrix = adjacency
        self.name = name
        self._norm_memo = _cache.norm_memo()

        n = adjacency.shape[0]
        if features is not None:
            features = np.asarray(features, dtype=np.float32)
            if features.shape[0] != n:
                raise GraphError(
                    f"features rows {features.shape[0]} != node count {n}"
                )
        if labels is not None:
            labels = np.asarray(labels)
            if labels.shape != (n,):
                raise GraphError(f"labels shape {labels.shape} != ({n},)")
        self.features = features
        self.labels = labels

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: np.ndarray,
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        name: str = "graph",
    ) -> "Graph":
        """Build a graph from an ``(E, 2)`` edge array (u, v pairs).

        Edges are undirected: each input pair contributes both directions.
        Duplicate edges collapse to weight 1.
        """
        edges = np.asarray(edges)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise GraphError(f"edges must be (E, 2), got {edges.shape}")
        if edges.size and (edges.min() < 0 or edges.max() >= num_nodes):
            raise GraphError("edge endpoints out of range")
        rows = np.concatenate([edges[:, 0], edges[:, 1]])
        cols = np.concatenate([edges[:, 1], edges[:, 0]])
        data = np.ones(rows.shape[0], dtype=np.float32)
        adjacency = sp.csr_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes))
        adjacency.data[:] = 1.0  # collapse duplicates
        return cls(adjacency, features=features, labels=labels,
                   assume_symmetric=True, name=name)

    # ------------------------------------------------------------------
    # basic statistics
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Directed edge count (each undirected edge counted twice)."""
        return int(self.adjacency.nnz)

    @property
    def degrees(self) -> np.ndarray:
        """Node degrees without self-loops."""
        return np.asarray(self.adjacency.sum(axis=1)).ravel()

    @property
    def num_features(self) -> int:
        if self.features is None:
            raise GraphError("graph has no node features")
        return self.features.shape[1]

    @property
    def num_classes(self) -> int:
        if self.labels is None:
            raise GraphError("graph has no labels")
        return int(self.labels.max()) + 1

    # ------------------------------------------------------------------
    # spectral operators
    # ------------------------------------------------------------------
    def normalized_adjacency(self, rho: float = 0.5, self_loops: bool = True) -> sp.csr_matrix:
        """Return ``Ã = D̄^(ρ-1) Ā D̄^(-ρ)`` (cached).

        ``ρ = 0.5`` gives the GCN symmetric normalization; ``ρ = 1`` the
        random-walk (row-stochastic transpose) form; ``ρ = 0`` the
        column-stochastic form. Isolated nodes keep a unit self-loop
        contribution when ``self_loops`` is true.
        """
        if not 0.0 <= rho <= 1.0:
            raise GraphError(f"normalization coefficient must be in [0, 1], got {rho}")
        key = ("adj", round(float(rho), 6), bool(self_loops))
        if not _cache.is_enabled():
            return self._build_normalized_adjacency(rho, self_loops)
        return self._norm_memo.get_or_compute(
            key, lambda: self._shared_norm(
                key, lambda: self._build_normalized_adjacency(rho,
                                                              self_loops)))

    def _build_normalized_adjacency(self, rho: float,
                                    self_loops: bool) -> sp.csr_matrix:
        if self_loops:
            adj = self.adjacency + sp.identity(self.num_nodes, format="csr", dtype=np.float32)
        else:
            adj = self.adjacency
        degree = np.asarray(adj.sum(axis=1)).ravel()
        degree = np.maximum(degree, 1e-12)
        left = sp.diags(degree ** (rho - 1.0))
        right = sp.diags(degree ** (-rho))
        return (left @ adj @ right).tocsr().astype(np.float32)

    def laplacian(self, rho: float = 0.5, self_loops: bool = True) -> sp.csr_matrix:
        """Return the normalized Laplacian ``L̃ = I − Ã`` (memoized)."""
        key = ("lap", round(float(rho), 6), bool(self_loops))
        if not _cache.is_enabled():
            return self._build_laplacian(rho, self_loops)
        return self._norm_memo.get_or_compute(
            key, lambda: self._shared_norm(
                key, lambda: self._build_laplacian(rho, self_loops)))

    def _shared_norm(self, key: tuple, builder) -> sp.csr_matrix:
        """Fall through to the cross-process term store before building.

        Pool workers synthesize content-identical graphs, so the first
        worker to normalize an operator publishes it and siblings attach
        the same bytes instead of repeating the O(m) build. The
        fingerprint binds the memo key to the adjacency payload token,
        so a mutated graph can never be served a sibling's operator.
        """
        handle = _shm.active_handle()
        if handle is None:
            return builder()
        fingerprint = _shm.blob_fingerprint(
            "norm", key, _cache.matrix_token(self.adjacency))
        matrix = _cache.shared_csr_fetch(handle, fingerprint)
        if matrix is not None:
            return matrix
        matrix = builder()
        _cache.shared_csr_publish(handle, fingerprint, matrix)
        return matrix

    def _build_laplacian(self, rho: float, self_loops: bool) -> sp.csr_matrix:
        identity = sp.identity(self.num_nodes, format="csr", dtype=np.float32)
        return (identity - self.normalized_adjacency(rho, self_loops)).tocsr()

    def norm_memo_stats(self) -> dict:
        """Traffic/occupancy snapshot of this graph's normalization memo."""
        return self._norm_memo.stats()

    # ------------------------------------------------------------------
    # structural utilities
    # ------------------------------------------------------------------
    def subgraph(self, nodes: np.ndarray) -> "Graph":
        """Induced subgraph on ``nodes`` (used by the graph-partition scheme)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            raise GraphError(
                "cannot take the induced subgraph of an empty node set"
            )
        sub_adj = self.adjacency[nodes][:, nodes].tocsr()
        sub_features = self.features[nodes] if self.features is not None else None
        sub_labels = self.labels[nodes] if self.labels is not None else None
        return Graph(sub_adj, features=sub_features, labels=sub_labels,
                     assume_symmetric=True, name=f"{self.name}/sub{len(nodes)}")

    def edge_list(self) -> np.ndarray:
        """Return the unique undirected edges as an ``(E, 2)`` array, u < v."""
        coo = sp.triu(self.adjacency, k=1).tocoo()
        return np.stack([coo.row, coo.col], axis=1)

    def memory_bytes(self) -> int:
        """Bytes held by the CSR topology (the O(m) term of Table 1)."""
        return int(
            self.adjacency.data.nbytes
            + self.adjacency.indices.nbytes
            + self.adjacency.indptr.nbytes
        )

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, n={self.num_nodes}, "
            f"m={self.num_edges}, features="
            f"{None if self.features is None else self.features.shape})"
        )
