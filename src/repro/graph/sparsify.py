"""Graph sparsification: trading edges for propagation speed.

The paper's related-work section (§2.3) points to sparsification as one of
the orthogonal acceleration techniques its pipeline can incorporate. This
module implements an importance-sampling sparsifier in the spirit of
effective-resistance sampling, with the standard cheap surrogate: an
edge's importance is ``1/d_u + 1/d_v`` (exact on trees, a good proxy on
expanders). Sampled edges are re-weighted by their inverse keep
probability, so the sparsified adjacency is an unbiased estimator of the
original and the Laplacian spectrum is approximately preserved — which is
what keeps spectral-filter outputs close.

``bench_ablation_design.py`` measures the resulting speed/accuracy trade.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..errors import GraphError
from .graph import Graph


def edge_importance(graph: Graph) -> np.ndarray:
    """Degree-based effective-resistance surrogate per undirected edge."""
    edges = graph.edge_list()
    degrees = np.maximum(graph.degrees, 1.0)
    return 1.0 / degrees[edges[:, 0]] + 1.0 / degrees[edges[:, 1]]


def sparsify(
    graph: Graph,
    keep_fraction: float,
    rng: Optional[np.random.Generator] = None,
    reweight: bool = True,
) -> Graph:
    """Sample edges by importance; return a lighter, spectrally-close graph.

    Parameters
    ----------
    keep_fraction:
        Expected fraction of undirected edges to keep, in (0, 1].
    reweight:
        Divide kept edge weights by their keep probability (unbiased
        Laplacian estimate). Disable for a plain unweighted subgraph.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise GraphError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    if keep_fraction == 1.0:
        return graph
    rng = rng or np.random.default_rng()

    edges = graph.edge_list()
    importance = edge_importance(graph)
    target = keep_fraction * len(edges)
    probabilities = np.minimum(1.0, importance * target / importance.sum())
    # One renormalization pass keeps the expected count on target after
    # clipping at 1.
    unclipped = probabilities < 1.0
    deficit = target - (~unclipped).sum()
    if unclipped.any() and deficit > 0:
        scale = deficit / probabilities[unclipped].sum()
        probabilities[unclipped] = np.minimum(1.0, probabilities[unclipped] * scale)

    kept = rng.random(len(edges)) < probabilities
    if not kept.any():
        raise GraphError("sparsification removed every edge; raise keep_fraction")
    kept_edges = edges[kept]
    if reweight:
        weights = (1.0 / probabilities[kept]).astype(np.float32)
    else:
        weights = np.ones(int(kept.sum()), dtype=np.float32)

    rows = np.concatenate([kept_edges[:, 0], kept_edges[:, 1]])
    cols = np.concatenate([kept_edges[:, 1], kept_edges[:, 0]])
    data = np.concatenate([weights, weights])
    adjacency = sp.csr_matrix((data, (rows, cols)),
                              shape=(graph.num_nodes, graph.num_nodes))
    return Graph(adjacency, features=graph.features, labels=graph.labels,
                 assume_symmetric=True,
                 name=f"{graph.name}/sparse{keep_fraction:g}")


def spectral_distortion(original: Graph, sparsified: Graph,
                        num_probes: int = 8, num_hops: int = 4,
                        seed: int = 0) -> float:
    """Relative propagation error of the sparsifier on random probe signals.

    Runs ``Ã^k x`` on both graphs for Gaussian probes and returns the mean
    relative L2 error — a direct measure of how much downstream filter
    outputs can move.
    """
    rng = np.random.default_rng(seed)
    probes = rng.normal(size=(original.num_nodes, num_probes)).astype(np.float32)
    a = original.normalized_adjacency()
    b = sparsified.normalized_adjacency()
    xa, xb = probes, probes
    errors = []
    for _ in range(num_hops):
        xa = a @ xa
        xb = b @ xb
        denominator = max(float(np.linalg.norm(xa)), 1e-12)
        errors.append(float(np.linalg.norm(xa - xb)) / denominator)
    return float(np.mean(errors))
