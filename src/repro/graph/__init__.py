"""Graph substrate: CSR topology, normalization, metrics, partitioning."""

from .families import (
    FAMILIES,
    barbell_graph,
    complete_graph,
    complete_spectrum,
    cycle_graph,
    cycle_spectrum,
    grid_graph,
    path_graph,
    star_graph,
    star_spectrum,
)
from .graph import Graph
from .metrics import (
    degree_groups,
    edge_homophily,
    label_frequency_profile,
    node_homophily,
    rayleigh_quotient,
)
from .partition import bfs_partition, cut_edges
from .sparsify import edge_importance, sparsify, spectral_distortion

__all__ = [
    "Graph",
    "node_homophily",
    "edge_homophily",
    "degree_groups",
    "rayleigh_quotient",
    "label_frequency_profile",
    "bfs_partition",
    "cut_edges",
    "sparsify",
    "edge_importance",
    "spectral_distortion",
    "cycle_graph",
    "cycle_spectrum",
    "path_graph",
    "complete_graph",
    "complete_spectrum",
    "star_graph",
    "star_spectrum",
    "grid_graph",
    "barbell_graph",
    "FAMILIES",
]
