"""Linear layers and the MLP transformations φ0 / φ1 of the paper.

The decoupled architecture (Appendix A.1) is ``H = φ1(g(L̃) · φ0(X))`` where
φ0 and φ1 are plain MLPs. :class:`MLP` matches that role: configurable depth
(0 layers = identity, the mini-batch φ0 setting in Table 4), hidden width F,
ReLU activations, and inverted dropout between layers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autodiff import functional as F
from ..autodiff import init
from ..autodiff.tensor import Tensor
from .module import Module, ModuleList, Parameter


class Linear(Module):
    """Affine map ``x @ W + b`` with Glorot-uniform weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class MLP(Module):
    """Multi-layer perceptron with ReLU and dropout; depth 0 = identity.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    hidden:
        Hidden width F for intermediate layers.
    num_layers:
        Number of linear layers. ``0`` returns the input unchanged (the
        mini-batch scheme's φ0), ``1`` is a single affine map.
    dropout:
        Probability applied before every linear layer.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        hidden: int = 64,
        num_layers: int = 1,
        dropout: float = 0.0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.dropout = float(dropout)
        self.num_layers = int(num_layers)
        self._rng = rng
        self.layers = ModuleList()
        if self.num_layers == 1:
            self.layers.append(Linear(in_features, out_features, bias=bias, rng=rng))
        elif self.num_layers >= 2:
            self.layers.append(Linear(in_features, hidden, bias=bias, rng=rng))
            for _ in range(self.num_layers - 2):
                self.layers.append(Linear(hidden, hidden, bias=bias, rng=rng))
            self.layers.append(Linear(hidden, out_features, bias=bias, rng=rng))

    def forward(self, x: Tensor) -> Tensor:
        if self.num_layers == 0:
            return x
        for index, layer in enumerate(self.layers):
            x = F.dropout(x, self.dropout, training=self.training, rng=self._rng)
            x = layer(x)
            if index < len(self.layers) - 1:
                x = x.relu()
        return x

    def __repr__(self) -> str:
        return f"MLP(layers={self.num_layers}, dropout={self.dropout})"
