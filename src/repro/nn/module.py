"""Module / Parameter abstractions mirroring the familiar ``torch.nn`` API.

A :class:`Module` owns named :class:`Parameter` leaves and child modules,
walks them recursively for optimizer construction, and carries a
training/eval flag consumed by dropout. Parameter discovery works through
attribute assignment, the same convention as PyTorch, so model code in
:mod:`repro.models` reads like the paper's reference implementation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..autodiff.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable leaf of a module."""

    def __init__(self, data: np.ndarray):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for neural components with recursive parameter discovery."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training: bool = True

    # ------------------------------------------------------------------
    # attribute-based registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name`` (for module lists)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters as a flat list."""
        return [param for _, param in self.named_parameters()]

    def parameter_count(self) -> int:
        """Total number of scalar parameters."""
        return sum(param.size for param in self.parameters())

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (controls dropout)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.grad = None

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Snapshot parameter arrays by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        for name, value in state.items():
            own[name].data = np.asarray(value, dtype=own[name].data.dtype).copy()

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container of sub-modules."""

    def __init__(self, modules: Optional[list] = None):
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        self.register_module(str(len(self._items)), module)
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
