"""Neural-network modules built on :mod:`repro.autodiff`."""

from .attention import SelfAttention, TransformerBlock
from .linear import MLP, Linear
from .module import Module, ModuleList, Parameter

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "MLP",
    "SelfAttention",
    "TransformerBlock",
]
