"""Scaled dot-product attention for the graph-transformer baselines.

NAGphormer tokenizes each node's K-hop neighbourhood into a short sequence
of hop features and runs a small transformer over it. Only single-head
attention over a (B, T, D) batch is needed for that baseline, so this module
implements exactly that, plus the residual/MLP transformer block.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autodiff import functional as F
from ..autodiff.tensor import Tensor
from .linear import Linear
from .module import Module


class SelfAttention(Module):
    """Single-head self-attention over (batch, tokens, dim) tensors."""

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.out = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        q = self.query(x)
        k = self.key(x)
        v = self.value(x)
        scores = (q @ k.transpose((0, 2, 1))) * (1.0 / np.sqrt(self.dim))
        weights = F.softmax(scores, axis=-1)
        attended = weights @ v
        return self.out(attended)


class TransformerBlock(Module):
    """Pre-norm-free transformer block: attention + MLP, both residual."""

    def __init__(
        self,
        dim: int,
        hidden: Optional[int] = None,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        hidden = hidden or 2 * dim
        self.attention = SelfAttention(dim, rng=rng)
        self.expand = Linear(dim, hidden, rng=rng)
        self.project = Linear(hidden, dim, rng=rng)
        self.dropout = float(dropout)
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(x)
        hidden = self.expand(x).relu()
        hidden = F.dropout(hidden, self.dropout, training=self.training, rng=self._rng)
        return x + self.project(hidden)
