"""Dataset registry: the paper's Table 3, machine-readable.

Each :class:`DatasetSpec` carries the published statistics — node count,
directed-edge count, node homophily score H, attribute width F_i, class
count F_o, and the efficacy metric — for all 22 benchmark datasets, grouped
by scale (S/M/L) and homophily class.

The public graphs themselves are not downloadable offline; the companion
:mod:`repro.datasets.synthesis` module generates a degree-corrected
contextual SBM graph matching any spec at a configurable ``scale``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of one benchmark dataset (one Table 3 row)."""

    name: str
    scale_class: str      # "S" | "M" | "L"
    homophily_class: str  # "homo" | "hetero"
    nodes: int
    edges: int            # directed count (undirected counted twice + loops)
    homophily: float      # node homophily score H
    num_features: int     # F_i
    num_classes: int      # F_o
    metric: str           # "accuracy" | "roc_auc"

    @property
    def average_degree(self) -> float:
        return self.edges / self.nodes

    @property
    def is_binary(self) -> bool:
        return self.num_classes == 2


def _spec(name, scale_class, homophily_class, nodes, edges, homophily,
          num_features, num_classes, metric="accuracy") -> DatasetSpec:
    return DatasetSpec(name, scale_class, homophily_class, nodes, edges,
                       homophily, num_features, num_classes, metric)


#: Table 3, in row order.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        # ----- small, homophilous -----
        _spec("cora", "S", "homo", 2708, 10556, 0.83, 1433, 7),
        _spec("citeseer", "S", "homo", 3327, 9104, 0.72, 3703, 6),
        _spec("pubmed", "S", "homo", 19717, 88648, 0.79, 500, 3),
        _spec("minesweeper", "S", "homo", 10000, 78804, 0.68, 7, 2, "roc_auc"),
        _spec("questions", "S", "homo", 48921, 307080, 0.90, 301, 2, "roc_auc"),
        _spec("tolokers", "S", "homo", 11758, 1038000, 0.63, 10, 2, "roc_auc"),
        # ----- small, heterophilous -----
        _spec("chameleon", "S", "hetero", 890, 17708, 0.24, 2325, 5),
        _spec("squirrel", "S", "hetero", 2223, 93996, 0.19, 2089, 5),
        _spec("actor", "S", "hetero", 7600, 30019, 0.22, 932, 5),
        _spec("roman", "S", "hetero", 22662, 65854, 0.05, 300, 18),
        _spec("ratings", "S", "hetero", 24492, 186100, 0.38, 300, 5),
        # ----- medium, homophilous -----
        _spec("flickr", "M", "homo", 89250, 899756, 0.32, 500, 7),
        _spec("arxiv", "M", "homo", 169343, 1166243, 0.63, 128, 40),
        # ----- medium, heterophilous -----
        _spec("arxiv-year", "M", "hetero", 169343, 1166243, 0.31, 128, 5),
        _spec("penn94", "M", "hetero", 41554, 2724458, 0.48, 4814, 2),
        _spec("genius", "M", "hetero", 421961, 984979, 0.08, 12, 2, "roc_auc"),
        _spec("twitch-gamer", "M", "hetero", 168114, 6797557, 0.10, 7, 2),
        # ----- large, homophilous -----
        _spec("mag", "L", "homo", 736389, 5416271, 0.31, 128, 349),
        _spec("products", "L", "homo", 2449029, 123718280, 0.83, 100, 47),
        # ----- large, heterophilous -----
        _spec("pokec", "L", "hetero", 1632803, 30622564, 0.43, 65, 2),
        _spec("snap-patents", "L", "hetero", 2923922, 13972555, 0.22, 269, 5),
        _spec("wiki", "L", "hetero", 1925342, 303434860, 0.28, 600, 5),
    ]
}

DATASET_NAMES: List[str] = list(DATASETS)


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name (case-insensitive)."""
    spec = DATASETS.get(name.lower())
    if spec is None:
        from ..errors import DatasetError

        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(DATASET_NAMES)}"
        )
    return spec


def by_scale(scale_class: str) -> List[DatasetSpec]:
    """All specs in one scale class ("S", "M" or "L")."""
    return [s for s in DATASETS.values() if s.scale_class == scale_class]


def by_homophily(homophily_class: str) -> List[DatasetSpec]:
    """All specs in one homophily class ("homo" or "hetero")."""
    return [s for s in DATASETS.values() if s.homophily_class == homophily_class]
