"""Synthetic graph generation: degree-corrected contextual SBMs.

The paper evaluates on 22 public datasets that cannot be downloaded in an
offline environment. This module is the documented substitution (DESIGN.md
§2): for any :class:`~repro.datasets.registry.DatasetSpec` it generates a
graph that matches the statistics *the paper's findings actually depend
on* —

- node/edge counts (scaled by a ``scale`` factor so CPU-only runs finish),
- the node-homophily score H, which drives every effectiveness finding,
- a heavy-tailed degree distribution (degree-corrected SBM), which drives
  the degree-bias findings of Section 6.3,
- attribute dimension F_i and class count F_o with class-conditional
  Gaussian features (the contextual-SBM model), which drive the
  over-squashing observations for small-F_i datasets.

Edges are sampled endpoint-wise: a source drawn ∝ degree propensity, then
a same-class target with probability H (else a uniform-class target),
which concentrates node homophily around H for every class balance.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..errors import DatasetError
from ..graph.graph import Graph
from .registry import DatasetSpec, get_spec


@dataclass(frozen=True)
class SynthesisConfig:
    """Tunables of the generator (defaults match the benchmark protocol)."""

    #: Linear down-scaling of node/edge counts; 1.0 = paper-sized graph.
    scale: float = 1.0
    #: Signal-to-noise ratio of class-conditional features; higher makes
    #: the Identity (MLP) baseline stronger.
    feature_signal: float = 0.5
    #: Fraction of cross-class edges that follow the structured partner
    #: cycle (class c → class c+1 mod C) instead of a uniform other class.
    #: Structured heterophily is what makes high-frequency filters useful —
    #: real heterophilous graphs (roman-empire's syntax chains, squirrel's
    #: traffic patterns) are disassortative but far from label-random.
    hetero_structure: float = 0.7
    #: Lognormal σ of degree propensities (0 = near-regular graph).
    degree_tail: float = 1.0
    #: Hard floor on generated node count.
    min_nodes: int = 60
    #: Hard floor on generated undirected edge count.
    min_edges: int = 120
    #: Latent dimensionality of the class-mean structure.
    latent_dim: int = 16


#: Supported range of the linear ``scale`` factor. Below the floor the
#: generator degenerates (every spec collapses onto the ``min_nodes`` /
#: ``min_edges`` floors, so "different scales" silently produce the same
#: graph); above 1.0 would extrapolate past the paper-sized statistics.
MIN_SCALE = 1e-4
MAX_SCALE = 1.0


def validate_scale(scale: float) -> float:
    """Check ``scale`` against the generator's supported range.

    Returns the value as a float, or raises :class:`DatasetError` with an
    actionable message. The bench CLI calls this at argument-parse time so
    an unsupported scale fails immediately instead of deep inside dataset
    generation.
    """
    try:
        scale = float(scale)
    except (TypeError, ValueError):
        raise DatasetError(f"scale must be a number, got {scale!r}") from None
    if not np.isfinite(scale) or not (MIN_SCALE <= scale <= MAX_SCALE):
        raise DatasetError(
            f"scale {scale!r} is outside the synthesizer's supported range "
            f"[{MIN_SCALE}, {MAX_SCALE}] (1.0 = paper-sized graph)"
        )
    return scale


def synthesize(
    spec_or_name: DatasetSpec | str,
    scale: float = 1.0,
    seed: int = 0,
    config: Optional[SynthesisConfig] = None,
) -> Graph:
    """Generate a graph matching a dataset spec at the given scale.

    Parameters
    ----------
    spec_or_name:
        A :class:`DatasetSpec` or registry name (e.g. ``"cora"``).
    scale:
        Node/edge linear scale factor; overrides ``config.scale``.
    seed:
        Generator seed; the same (spec, scale, seed) is bit-reproducible.
    """
    spec = get_spec(spec_or_name) if isinstance(spec_or_name, str) else spec_or_name
    config = replace(config or SynthesisConfig(), scale=validate_scale(scale))
    rng = np.random.default_rng(seed)

    n = max(config.min_nodes, int(round(spec.nodes * config.scale)))
    # Table 3 counts directed edges incl. self-loops; undirected unique ≈ (m−n)/2.
    target_undirected = int(round(max(spec.edges - spec.nodes, spec.nodes) * config.scale / 2))
    num_edges = max(config.min_edges, target_undirected)
    num_classes = min(spec.num_classes, n // 4) or 1

    labels = _sample_labels(rng, n, num_classes)
    edges = _sample_edges(rng, labels, num_edges, spec.homophily,
                          config.degree_tail, config.hetero_structure)
    features = _sample_features(rng, labels, spec.num_features,
                                config.latent_dim, config.feature_signal)
    graph = Graph.from_edges(n, edges, features=features, labels=labels,
                             name=f"{spec.name}@{config.scale:g}")
    return graph


def _sample_labels(rng: np.random.Generator, n: int, num_classes: int) -> np.ndarray:
    """Mildly imbalanced class assignment (Zipf-ish mass, min 2% a class)."""
    weights = 1.0 / np.arange(1, num_classes + 1) ** 0.5
    weights = np.maximum(weights / weights.sum(), 0.02)
    weights /= weights.sum()
    labels = rng.choice(num_classes, size=n, p=weights)
    # Guarantee every class appears so F_o stays faithful to the spec.
    for c in range(num_classes):
        if not np.any(labels == c):
            labels[rng.integers(n)] = c
    return labels


def _sample_edges(
    rng: np.random.Generator,
    labels: np.ndarray,
    num_edges: int,
    homophily: float,
    degree_tail: float,
    hetero_structure: float = 0.7,
) -> np.ndarray:
    """Endpoint sampling with degree propensities and homophily mixing."""
    n = labels.shape[0]
    num_classes = int(labels.max()) + 1
    propensity = rng.lognormal(mean=0.0, sigma=degree_tail, size=n)
    propensity /= propensity.sum()

    class_members = [np.flatnonzero(labels == c) for c in range(num_classes)]
    class_probs = []
    for members in class_members:
        weights = propensity[members]
        class_probs.append(weights / weights.sum())

    # Oversample: self-loops and duplicates get dropped afterwards.
    oversample = int(num_edges * 1.35) + 16
    sources = rng.choice(n, size=oversample, p=propensity)
    same_class = rng.random(oversample) < homophily
    targets = np.empty(oversample, dtype=np.int64)

    # Same-class targets: per-class vectorized draws.
    for c in range(num_classes):
        mask = same_class & (labels[sources] == c)
        count = int(mask.sum())
        if count:
            targets[mask] = rng.choice(class_members[c], size=count, p=class_probs[c])
    # Cross-class targets: with probability ``hetero_structure`` follow the
    # partner cycle c → c+1 (structured disassortativity, the pattern that
    # makes high-frequency filters informative), otherwise draw from the
    # propensity-weighted complement of the source class. Both branches
    # avoid the source class, so the homophily target is exact.
    cross = ~same_class
    if num_classes == 1:
        count = int(cross.sum())
        if count:
            targets[cross] = rng.choice(n, size=count, p=propensity)
    else:
        structured = cross & (rng.random(oversample) < hetero_structure)
        for c in range(num_classes):
            partner = (c + 1) % num_classes
            mask = structured & (labels[sources] == c)
            count = int(mask.sum())
            if count:
                targets[mask] = rng.choice(
                    class_members[partner], size=count, p=class_probs[partner]
                )
            mask = cross & ~structured & (labels[sources] == c)
            count = int(mask.sum())
            if count:
                complement = np.flatnonzero(labels != c)
                weights = propensity[complement]
                targets[mask] = rng.choice(
                    complement, size=count, p=weights / weights.sum()
                )

    edges = np.stack([sources, targets], axis=1)
    edges = edges[edges[:, 0] != edges[:, 1]]
    low = np.minimum(edges[:, 0], edges[:, 1])
    high = np.maximum(edges[:, 0], edges[:, 1])
    edges = np.unique(np.stack([low, high], axis=1), axis=0)
    if edges.shape[0] > num_edges:
        keep = rng.choice(edges.shape[0], size=num_edges, replace=False)
        edges = edges[keep]
    if edges.shape[0] == 0:
        raise DatasetError("edge sampling produced an empty graph")
    return edges


def _sample_features(
    rng: np.random.Generator,
    labels: np.ndarray,
    num_features: int,
    latent_dim: int,
    signal: float,
) -> np.ndarray:
    """Contextual-SBM features: class mean + isotropic noise, projected."""
    n = labels.shape[0]
    num_classes = int(labels.max()) + 1
    latent = min(latent_dim, num_features)
    means = rng.normal(size=(num_classes, latent)) * signal
    latent_features = means[labels] + rng.normal(size=(n, latent))
    projection = rng.normal(size=(latent, num_features)) / np.sqrt(latent)
    features = latent_features @ projection
    features += 0.1 * rng.normal(size=(n, num_features))
    return features.astype(np.float32)


def load(name: str, scale: float = 1.0, seed: int = 0,
         config: Optional[SynthesisConfig] = None) -> Graph:
    """Registry-name convenience wrapper around :func:`synthesize`."""
    return synthesize(name, scale=scale, seed=seed, config=config)
