"""Train/validation/test splits under the paper's protocol.

Datasets without predefined splits use random 60%/20%/20% node splits
(Section 4); all filters learning under the same seed share the same split,
which is the basis of the stability study in Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import DatasetError


def _validate_fractions(fractions) -> None:
    if any(f < 0.0 or f > 1.0 for f in fractions):
        raise DatasetError(f"split fractions must be in [0, 1], got {fractions}")
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise DatasetError(f"split fractions must sum to 1, got {fractions}")


@dataclass(frozen=True)
class Split:
    """Index arrays of one train/validation/test split."""

    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray

    def __post_init__(self):
        total = len(self.train) + len(self.valid) + len(self.test)
        combined = np.concatenate([self.train, self.valid, self.test])
        if len(np.unique(combined)) != total:
            raise DatasetError("split index arrays overlap")

    @property
    def num_nodes(self) -> int:
        return len(self.train) + len(self.valid) + len(self.test)


def random_split(
    num_nodes: int,
    seed: int = 0,
    fractions: Tuple[float, float, float] = (0.6, 0.2, 0.2),
) -> Split:
    """Random node split; the default fractions are the paper's 60/20/20."""
    _validate_fractions(fractions)
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_nodes)
    train_end = int(round(fractions[0] * num_nodes))
    valid_end = train_end + int(round(fractions[1] * num_nodes))
    return Split(
        train=np.sort(order[:train_end]),
        valid=np.sort(order[train_end:valid_end]),
        test=np.sort(order[valid_end:]),
    )


def stratified_split(
    labels: np.ndarray,
    seed: int = 0,
    fractions: Tuple[float, float, float] = (0.6, 0.2, 0.2),
) -> Split:
    """Per-class random split; the analogue of attribute-based stable splits.

    The paper notes (Figure 4) that attribute-based splits such as arxiv's
    produce far lower seed variance than uniform random splits; stratifying
    reproduces that stability property.
    """
    _validate_fractions(fractions)
    rng = np.random.default_rng(seed)
    labels = np.asarray(labels)
    train_parts, valid_parts, test_parts = [], [], []
    for cls in np.unique(labels):
        members = rng.permutation(np.flatnonzero(labels == cls))
        train_end = int(round(fractions[0] * len(members)))
        valid_end = train_end + int(round(fractions[1] * len(members)))
        train_parts.append(members[:train_end])
        valid_parts.append(members[train_end:valid_end])
        test_parts.append(members[valid_end:])
    return Split(
        train=np.sort(np.concatenate(train_parts)),
        valid=np.sort(np.concatenate(valid_parts)),
        test=np.sort(np.concatenate(test_parts)),
    )


def edge_split(
    edges: np.ndarray,
    seed: int = 0,
    fractions: Tuple[float, float, float] = (0.8, 0.1, 0.1),
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split undirected edges for link prediction (train/valid/test)."""
    _validate_fractions(fractions)
    rng = np.random.default_rng(seed)
    order = rng.permutation(edges.shape[0])
    train_end = int(round(fractions[0] * len(order)))
    valid_end = train_end + int(round(fractions[1] * len(order)))
    return (
        edges[order[:train_end]],
        edges[order[train_end:valid_end]],
        edges[order[valid_end:]],
    )
