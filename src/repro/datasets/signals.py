"""Spectral signal functions and regression targets (Table 7).

The signal-regression task (Section 6.1.3) fits a filter to a known
spectral transfer function g*: given an input signal x, the supervision is
``z = U g*(Λ) Uᵀ x`` computed by exact eigendecomposition. The five
functions here are exactly the paper's Table 7 columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from ..errors import DatasetError
from ..graph.graph import Graph
from ..spectral.decomposition import laplacian_eigendecomposition

SignalFunction = Callable[[np.ndarray], np.ndarray]

#: Table 7's five transfer functions over λ ∈ [0, 2].
SIGNAL_FUNCTIONS: Dict[str, SignalFunction] = {
    "band": lambda lam: np.exp(-10.0 * (lam - 1.0) ** 2),
    "combine": lambda lam: np.abs(np.sin(np.pi * lam)),
    "high": lambda lam: 1.0 - np.exp(-10.0 * lam ** 2),
    "low": lambda lam: np.exp(-10.0 * lam ** 2),
    "reject": lambda lam: 1.0 - np.exp(-10.0 * (lam - 1.0) ** 2),
}

SIGNAL_NAMES = list(SIGNAL_FUNCTIONS)


@dataclass(frozen=True)
class RegressionTask:
    """One signal-regression instance: input x, target z, and the spectrum."""

    name: str
    input_signal: np.ndarray   # (n, F)
    target_signal: np.ndarray  # (n, F)
    eigenvalues: np.ndarray    # (n,)


def make_regression_task(
    graph: Graph,
    signal_name: str,
    num_channels: int = 4,
    seed: int = 0,
    rho: float = 0.5,
) -> RegressionTask:
    """Build a fully-supervised regression pair (x, z = g* ∗ x).

    The input is white noise flattened across the spectrum so every
    frequency is represented; the target is its exact filtering by the
    chosen transfer function — computable only on graphs small enough for
    dense eigendecomposition.
    """
    func = SIGNAL_FUNCTIONS.get(signal_name)
    if func is None:
        raise DatasetError(
            f"unknown signal {signal_name!r}; known: {', '.join(SIGNAL_NAMES)}"
        )
    eigenvalues, eigenvectors = laplacian_eigendecomposition(graph, rho=rho)
    rng = np.random.default_rng(seed)
    # Uniform spectral content: coefficients ~ N(0,1) in the eigenbasis.
    spectral_coefficients = rng.normal(size=(graph.num_nodes, num_channels))
    input_signal = eigenvectors @ spectral_coefficients
    response = func(eigenvalues)
    target_signal = eigenvectors @ (response[:, None] * spectral_coefficients)
    return RegressionTask(
        name=signal_name,
        input_signal=input_signal.astype(np.float32),
        target_signal=target_signal.astype(np.float32),
        eigenvalues=eigenvalues,
    )
