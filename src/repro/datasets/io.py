"""Graph persistence: .npz round trips for generated datasets.

Synthetic benchmark graphs are cheap to regenerate but sweeps want
byte-identical inputs across processes and sessions; saving the generated
artifact pins it exactly (and documents which spec/scale/seed produced it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..errors import DatasetError
from ..graph.graph import Graph

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_graph(graph: Graph, path: PathLike,
               metadata: Optional[Dict] = None) -> None:
    """Write a graph (topology + features + labels + metadata) to .npz."""
    adjacency = graph.adjacency.tocsr()
    payload = {
        "format_version": np.array([_FORMAT_VERSION]),
        "shape": np.asarray(adjacency.shape),
        "data": adjacency.data,
        "indices": adjacency.indices,
        "indptr": adjacency.indptr,
        "name": np.frombuffer(graph.name.encode(), dtype=np.uint8),
        "metadata": np.frombuffer(
            json.dumps(metadata or {}).encode(), dtype=np.uint8),
    }
    if graph.features is not None:
        payload["features"] = graph.features
    if graph.labels is not None:
        payload["labels"] = graph.labels
    np.savez_compressed(Path(path), **payload)


def load_graph(path: PathLike) -> Tuple[Graph, Dict]:
    """Read a graph written by :func:`save_graph`; returns (graph, metadata)."""
    with np.load(Path(path)) as archive:
        if "format_version" not in archive.files:
            raise DatasetError(f"{path} is not a saved graph file")
        version = int(archive["format_version"][0])
        if version != _FORMAT_VERSION:
            raise DatasetError(
                f"unsupported graph format version {version} in {path}")
        shape = tuple(int(v) for v in archive["shape"])
        adjacency = sp.csr_matrix(
            (archive["data"], archive["indices"], archive["indptr"]),
            shape=shape)
        features = archive["features"] if "features" in archive.files else None
        labels = archive["labels"] if "labels" in archive.files else None
        name = archive["name"].tobytes().decode()
        metadata = json.loads(archive["metadata"].tobytes().decode())
    graph = Graph(adjacency, features=features, labels=labels,
                  assume_symmetric=True, name=name)
    return graph, metadata
