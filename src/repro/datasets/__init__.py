"""Datasets: Table 3 registry, synthetic generation, splits, signals."""

from .registry import (
    DATASET_NAMES,
    DATASETS,
    DatasetSpec,
    by_homophily,
    by_scale,
    get_spec,
)
from .io import load_graph, save_graph
from .signals import (
    SIGNAL_FUNCTIONS,
    SIGNAL_NAMES,
    RegressionTask,
    make_regression_task,
)
from .splits import Split, edge_split, random_split, stratified_split
from .synthesis import SynthesisConfig, load, synthesize

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "DATASET_NAMES",
    "get_spec",
    "by_scale",
    "by_homophily",
    "SynthesisConfig",
    "synthesize",
    "load",
    "Split",
    "random_split",
    "stratified_split",
    "edge_split",
    "save_graph",
    "load_graph",
    "SIGNAL_FUNCTIONS",
    "SIGNAL_NAMES",
    "RegressionTask",
    "make_regression_task",
]
