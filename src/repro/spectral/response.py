"""Frequency-response utilities connecting filters to graph spectra.

A filter's effectiveness, the paper argues (RQ6/C3), is determined by how
its frequency response aligns with where the task's signal lives on the
spectrum. These helpers evaluate responses on grids or exact spectra and
quantify that alignment.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..filters.base import SpectralFilter
from ..graph.graph import Graph
from .decomposition import laplacian_eigendecomposition


def response_on_grid(
    filter_: SpectralFilter,
    num_points: int = 101,
    params: Optional[Dict[str, np.ndarray]] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate ``g(λ)`` on a uniform grid over the spectrum [0, 2]."""
    lams = np.linspace(0.0, 2.0, num_points)
    return lams, filter_.response(lams, params)


def response_on_spectrum(
    filter_: SpectralFilter,
    graph: Graph,
    params: Optional[Dict[str, np.ndarray]] = None,
    rho: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate ``g`` at the graph's exact eigenvalues (small graphs)."""
    eigenvalues, _ = laplacian_eigendecomposition(graph, rho)
    return eigenvalues, filter_.response(eigenvalues, params)


def low_frequency_mass(
    filter_: SpectralFilter,
    params: Optional[Dict[str, np.ndarray]] = None,
    cutoff: float = 1.0,
) -> float:
    """Fraction of squared response mass below ``cutoff`` on [0, 2].

    1.0 = pure low-pass, 0.0 = pure high-pass; the scalar the guideline
    helper compares against a dataset's homophily to pick filters (C5).
    """
    lams, response = response_on_grid(filter_, 201, params)
    energy = response ** 2
    total = energy.sum()
    if total <= 0:
        return 0.5
    return float(energy[lams <= cutoff].sum() / total)


def response_alignment(
    filter_: SpectralFilter,
    graph: Graph,
    signal: np.ndarray,
    params: Optional[Dict[str, np.ndarray]] = None,
    rho: float = 0.5,
) -> float:
    """Cosine alignment between |g(λ)| and a signal's spectral energy.

    Decomposes the signal in the Laplacian eigenbasis, takes per-frequency
    energies, and measures how well the filter's magnitude response covers
    them. Values near 1 indicate the filter passes exactly the frequencies
    the signal occupies.
    """
    eigenvalues, eigenvectors = laplacian_eigendecomposition(graph, rho)
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim == 1:
        signal = signal[:, None]
    coefficients = eigenvectors.T @ signal
    energy = (coefficients ** 2).sum(axis=1)
    magnitude = np.abs(filter_.response(eigenvalues, params))
    num = float((magnitude * energy).sum())
    den = float(np.linalg.norm(magnitude) * np.linalg.norm(energy))
    return num / den if den > 0 else 0.0
