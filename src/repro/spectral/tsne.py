"""t-SNE from scratch, for the cluster visualizations of Figure 8.

A compact implementation of Barnes-Hut-free t-SNE (van der Maaten &
Hinton): binary-search perplexity calibration, symmetrized affinities,
Student-t low-dimensional kernel, gradient descent with momentum and early
exaggeration. Quadratic in the number of points — intended for the
few-thousand-node visualization graphs the paper uses, not for training.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ReproError


def _pairwise_squared_distances(x: np.ndarray) -> np.ndarray:
    norms = (x ** 2).sum(axis=1)
    distances = norms[:, None] + norms[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def _calibrate_affinities(distances: np.ndarray, perplexity: float,
                          tol: float = 1e-4, max_iter: int = 50) -> np.ndarray:
    """Per-point binary search for the bandwidth hitting the perplexity."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    affinities = np.zeros((n, n))
    for i in range(n):
        beta, beta_low, beta_high = 1.0, 0.0, np.inf
        row = distances[i].copy()
        row[i] = np.inf
        for _ in range(max_iter):
            p = np.exp(-row * beta)
            total = p.sum()
            if total <= 0:
                entropy = 0.0
                p = np.zeros_like(p)
            else:
                p /= total
                nonzero = p > 0
                entropy = -np.sum(p[nonzero] * np.log(p[nonzero]))
            error = entropy - target_entropy
            if abs(error) < tol:
                break
            if error > 0:
                beta_low = beta
                beta = beta * 2.0 if beta_high == np.inf else (beta + beta_high) / 2.0
            else:
                beta_high = beta
                beta = beta / 2.0 if beta_low == 0.0 else (beta + beta_low) / 2.0
        affinities[i] = p
    return affinities


def tsne(
    x: np.ndarray,
    num_components: int = 2,
    perplexity: float = 30.0,
    learning_rate: float = 200.0,
    num_iterations: int = 400,
    seed: int = 0,
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Embed points into ``num_components`` dimensions with t-SNE.

    Parameters mirror the common reference implementation. Runtime and
    memory are O(n²); keep n in the low thousands.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ReproError(f"t-SNE input must be 2-D, got {x.shape}")
    n = x.shape[0]
    if perplexity >= n:
        raise ReproError(f"perplexity {perplexity} must be < number of points {n}")
    rng = np.random.default_rng(seed)

    distances = _pairwise_squared_distances(x)
    conditional = _calibrate_affinities(distances, perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    joint = np.maximum(joint, 1e-12)

    if initial is not None:
        embedding = np.asarray(initial, dtype=np.float64).copy()
    else:
        embedding = rng.normal(scale=1e-4, size=(n, num_components))
    velocity = np.zeros_like(embedding)
    gains = np.ones_like(embedding)

    exaggeration_until = min(100, num_iterations // 4)
    for iteration in range(num_iterations):
        p = joint * 4.0 if iteration < exaggeration_until else joint
        momentum = 0.5 if iteration < 250 else 0.8

        low_d = _pairwise_squared_distances(embedding)
        kernel = 1.0 / (1.0 + low_d)
        np.fill_diagonal(kernel, 0.0)
        q = np.maximum(kernel / kernel.sum(), 1e-12)

        coefficient = (p - q) * kernel
        grad = 4.0 * (
            np.diag(coefficient.sum(axis=1)) @ embedding - coefficient @ embedding
        )

        flips = np.sign(grad) != np.sign(velocity)
        gains = np.where(flips, gains + 0.2, gains * 0.8)
        gains = np.maximum(gains, 0.01)
        velocity = momentum * velocity - learning_rate * gains * grad
        embedding = embedding + velocity
        embedding -= embedding.mean(axis=0, keepdims=True)
    return embedding


def cluster_separation(embedding: np.ndarray, labels: np.ndarray) -> float:
    """Silhouette-style separation score of an embedding's label clusters.

    Ratio of mean between-class centroid distance to mean within-class
    spread; higher means sharper clusters (the property Figure 8 reads off
    visually).
    """
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if classes.size < 2:
        raise ReproError("cluster separation needs at least two classes")
    centroids = np.stack([embedding[labels == c].mean(axis=0) for c in classes])
    within = np.mean(
        [
            np.linalg.norm(embedding[labels == c] - centroids[i], axis=1).mean()
            for i, c in enumerate(classes)
        ]
    )
    between = _pairwise_squared_distances(centroids)
    between = np.sqrt(between[np.triu_indices(classes.size, k=1)]).mean()
    return float(between / max(within, 1e-12))
