"""Executable filter-selection guidelines (the paper's C5, operationalized).

The benchmark's concluding advice: *balance effectiveness and efficiency by
examining the graph first — prefer simple fixed filters whose frequency
response matches the graph's signal, and reach for variable/bank designs
only when no fixed response fits.* This module turns that prose into a
ranked recommendation:

1. Characterize the task signal: project the (training) labels onto the
   Laplacian eigenbasis and keep the spectral energy profile.
2. Score every registry filter by the alignment between its attainable
   response and that profile — fixed filters at their response, variable
   filters at their least-squares-fitted response (they can adapt).
3. Fold in the taxonomy's efficiency model: prefer cheaper categories at
   equal alignment (the paper's "simple but suitable" rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..filters.design import fit_filter_to_response
from ..filters.registry import FILTER_NAMES, REGISTRY, make_filter
from ..graph.graph import Graph
from .decomposition import laplacian_eigendecomposition

#: Relative efficiency weight per category, from the Table 1 complexity
#: model: fixed filters combine in O(nF); variable keep K+1 channels; banks
#: multiply by Q.
CATEGORY_COST = {"fixed": 1.0, "variable": 2.0, "bank": 3.0}


@dataclass(frozen=True)
class Recommendation:
    """One ranked entry of the guideline output."""

    filter_name: str
    display: str
    category: str
    alignment: float       # spectral match with the task signal in [0, 1]
    cost: float            # taxonomy cost class (1 = cheapest)
    score: float           # alignment discounted by cost

    def rationale(self) -> str:
        return (
            f"{self.display} ({self.category}): alignment "
            f"{self.alignment:.2f} at cost class {self.cost:.0f}"
        )


def label_spectral_energy(graph: Graph, labels: Optional[np.ndarray] = None,
                          rho: float = 0.5) -> np.ndarray:
    """Per-eigenvalue energy of the (centred, one-hot) label signal."""
    if labels is None:
        labels = graph.labels
    labels = np.asarray(labels)
    num_classes = int(labels.max()) + 1
    one_hot = np.zeros((graph.num_nodes, num_classes))
    one_hot[np.arange(graph.num_nodes), labels] = 1.0
    one_hot -= one_hot.mean(axis=0, keepdims=True)
    _, eigenvectors = laplacian_eigendecomposition(graph, rho)
    coefficients = eigenvectors.T @ one_hot
    return (coefficients ** 2).sum(axis=1)


def _alignment(response: np.ndarray, energy: np.ndarray) -> float:
    magnitude = np.abs(response)
    denominator = float(np.linalg.norm(magnitude) * np.linalg.norm(energy))
    if denominator <= 0:
        return 0.0
    return float((magnitude * energy).sum() / denominator)


def recommend_filters(
    graph: Graph,
    labels: Optional[np.ndarray] = None,
    candidates: Optional[Sequence[str]] = None,
    num_hops: int = 10,
    efficiency_weight: float = 0.15,
    rho: float = 0.5,
) -> List[Recommendation]:
    """Rank filters for a graph by spectral match, discounted by cost.

    Parameters
    ----------
    efficiency_weight:
        How strongly the taxonomy cost discounts alignment
        (``score = alignment − weight·(cost − 1)/2``); 0 ranks purely by
        spectral match.

    Returns recommendations sorted best-first. Requires a graph small
    enough for dense eigendecomposition (the guideline is a design-time
    tool; apply the chosen filter at any scale).
    """
    eigenvalues, _ = laplacian_eigendecomposition(graph, rho)
    energy = label_spectral_energy(graph, labels, rho)
    names = list(candidates) if candidates is not None else list(FILTER_NAMES)

    recommendations = []
    for name in names:
        entry = REGISTRY[name]
        filter_ = make_filter(name, num_hops=num_hops, num_features=1)
        if entry.category == "fixed":
            response = filter_.response(eigenvalues)
        else:
            # Variable/bank filters adapt: score the best response their
            # basis can reach for this energy profile.
            target = energy / max(energy.max(), 1e-12)
            try:
                params = fit_filter_to_response(
                    filter_, lambda lam: np.interp(lam, eigenvalues, target),
                    grid=eigenvalues)
                response = filter_.response(eigenvalues, params)
            except Exception:
                response = filter_.response(eigenvalues)
        alignment = _alignment(response, energy)
        cost = CATEGORY_COST[entry.category]
        score = alignment - efficiency_weight * (cost - 1.0) / 2.0
        recommendations.append(
            Recommendation(name, entry.display, entry.category,
                           alignment, cost, score))
    recommendations.sort(key=lambda r: -r.score)
    return recommendations
