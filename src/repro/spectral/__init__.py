"""Spectral analysis: decomposition, frequency response, visualization."""

from .guidelines import (
    CATEGORY_COST,
    Recommendation,
    label_spectral_energy,
    recommend_filters,
)
from .decomposition import (
    EIG_CACHE_ENTRIES,
    MAX_DENSE_NODES,
    clear_eig_cache,
    eig_cache_stats,
    extremal_eigenvalues,
    laplacian_eigendecomposition,
    spectral_density,
)
from .response import (
    low_frequency_mass,
    response_alignment,
    response_on_grid,
    response_on_spectrum,
)
from .tsne import cluster_separation, tsne

__all__ = [
    "laplacian_eigendecomposition",
    "extremal_eigenvalues",
    "spectral_density",
    "MAX_DENSE_NODES",
    "EIG_CACHE_ENTRIES",
    "clear_eig_cache",
    "eig_cache_stats",
    "response_on_grid",
    "response_on_spectrum",
    "low_frequency_mass",
    "response_alignment",
    "tsne",
    "recommend_filters",
    "Recommendation",
    "label_spectral_energy",
    "CATEGORY_COST",
    "cluster_separation",
]
