"""Spectral analysis: decomposition, frequency response, visualization."""

from .guidelines import (
    CATEGORY_COST,
    Recommendation,
    label_spectral_energy,
    recommend_filters,
)
from .decomposition import (
    MAX_DENSE_NODES,
    extremal_eigenvalues,
    laplacian_eigendecomposition,
    spectral_density,
)
from .response import (
    low_frequency_mass,
    response_alignment,
    response_on_grid,
    response_on_spectrum,
)
from .tsne import cluster_separation, tsne

__all__ = [
    "laplacian_eigendecomposition",
    "extremal_eigenvalues",
    "spectral_density",
    "MAX_DENSE_NODES",
    "response_on_grid",
    "response_on_spectrum",
    "low_frequency_mass",
    "response_alignment",
    "tsne",
    "recommend_filters",
    "Recommendation",
    "label_spectral_energy",
    "CATEGORY_COST",
    "cluster_separation",
]
