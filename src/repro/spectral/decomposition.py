"""Eigendecomposition helpers for spectral analysis.

Full eigendecomposition is O(n³) and — as the paper stresses — prohibitive
at graph scale; these helpers exist for the analysis tasks that need exact
spectra on small graphs (signal regression, response validation) plus a
sparse Lanczos path for extremal eigenvalues on larger graphs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import GraphError
from ..graph.graph import Graph

#: Dense decomposition guardrail; above this the O(n³) cost is the point
#: the paper makes about decomposition-based frameworks.
MAX_DENSE_NODES = 5000


def laplacian_eigendecomposition(
    graph: Graph, rho: float = 0.5
) -> Tuple[np.ndarray, np.ndarray]:
    """Full spectrum of ``L̃``: eigenvalues (ascending) and eigenvectors.

    Uses the symmetric solver: at ρ = 1/2 the normalized Laplacian is
    symmetric; for ρ ≠ 1/2 it is similar to the symmetric one, and we
    decompose the symmetric similar matrix so eigenvalues stay real.
    """
    n = graph.num_nodes
    if n > MAX_DENSE_NODES:
        raise GraphError(
            f"dense eigendecomposition capped at {MAX_DENSE_NODES} nodes "
            f"(got {n}); use extremal_eigenvalues for large graphs"
        )
    laplacian = graph.laplacian(rho=0.5).toarray().astype(np.float64)
    laplacian = (laplacian + laplacian.T) / 2.0  # enforce exact symmetry
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    eigenvalues = np.clip(eigenvalues, 0.0, 2.0)
    return eigenvalues, eigenvectors


def extremal_eigenvalues(graph: Graph, rho: float = 0.5, k: int = 2
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Smallest and largest ``k`` eigenvalues of ``L̃`` via sparse Lanczos."""
    laplacian = graph.laplacian(rho=0.5).astype(np.float64)
    laplacian = (laplacian + laplacian.T) / 2.0
    small = spla.eigsh(laplacian, k=k, which="SA", return_eigenvectors=False)
    large = spla.eigsh(laplacian, k=k, which="LA", return_eigenvectors=False)
    return np.sort(small), np.sort(large)


def spectral_density(graph: Graph, bins: int = 20, rho: float = 0.5) -> np.ndarray:
    """Histogram of the Laplacian spectrum over [0, 2] (small graphs)."""
    eigenvalues, _ = laplacian_eigendecomposition(graph, rho)
    histogram, _ = np.histogram(eigenvalues, bins=bins, range=(0.0, 2.0))
    return histogram / histogram.sum()
