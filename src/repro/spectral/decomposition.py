"""Eigendecomposition helpers for spectral analysis.

Full eigendecomposition is O(n³) and — as the paper stresses — prohibitive
at graph scale; these helpers exist for the analysis tasks that need exact
spectra on small graphs (signal regression, response validation) plus a
sparse Lanczos path for extremal eigenvalues on larger graphs.

Observability: both paths feed the autodiff op hook
(:func:`repro.autodiff.tensor._notify_op`), so FLOP accounting sees the
decomposition cost that PR 1's counters could not — ``ops.eig.calls`` /
``ops.eig.flops`` / ``ops.eig.bytes`` on any telemetry-enabled run, with
the output bytes attributed to the open span like every other op. The
dense FLOP model is the standard ≈ 9n³ for a full symmetric
eigendecomposition (reduction to tridiagonal + QR iteration + back-
transform); the Lanczos path reports an order-of-magnitude estimate from
the matvec volume.

Caching: dense eigenpairs are memoized through
:mod:`repro.runtime.cache` keyed on (graph identity, adjacency mutation
fingerprint, ρ) with traffic on ``cache.eig.{hit,miss,evict}``. Cached
arrays are returned read-only so a caller cannot silently corrupt the
shared spectra; the memo is bypassed entirely under ``--no-cache`` /
:func:`repro.runtime.cache.caches_disabled`, restoring seed behaviour.
"""

from __future__ import annotations

import weakref
from typing import Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..autodiff.tensor import _notify_op
from ..errors import GraphError
from ..graph.graph import Graph
from ..runtime import cache as _cache

#: Dense decomposition guardrail; above this the O(n³) cost is the point
#: the paper makes about decomposition-based frameworks.
MAX_DENSE_NODES = 5000

#: Bound on memoized eigenpairs; each entry is O(n²) floats, so keep few.
EIG_CACHE_ENTRIES = 8

#: FLOPs of a full symmetric eigendecomposition: tridiagonal reduction
#: (4/3 n³) + implicit-QR eigenvalues + accumulating the eigenvector
#: back-transform ≈ 9n³ total (Golub & Van Loan ballpark).
DENSE_EIG_FLOPS_PER_N3 = 9


def _notify_dense_eig(eigenvalues: np.ndarray,
                      eigenvectors: np.ndarray) -> None:
    n = eigenvalues.shape[0]
    _notify_op("eig", DENSE_EIG_FLOPS_PER_N3 * n ** 3,
               eigenvalues.nbytes + eigenvectors.nbytes)


def _decompose_dense(graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
    laplacian = graph.laplacian(rho=0.5).toarray().astype(np.float64)
    laplacian = (laplacian + laplacian.T) / 2.0  # enforce exact symmetry
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    eigenvalues = np.clip(eigenvalues, 0.0, 2.0)
    _notify_dense_eig(eigenvalues, eigenvectors)
    return eigenvalues, eigenvectors


_eig_cache = _cache.LRUCache(EIG_CACHE_ENTRIES, counter_prefix="cache.eig")


def clear_eig_cache() -> None:
    """Drop every memoized eigenpair (tests, ``--no-cache`` resets)."""
    _eig_cache.clear()


def eig_cache_stats() -> dict:
    """Traffic/occupancy snapshot of the eigenpair memo."""
    return _eig_cache.stats()


def laplacian_eigendecomposition(
    graph: Graph, rho: float = 0.5
) -> Tuple[np.ndarray, np.ndarray]:
    """Full spectrum of ``L̃``: eigenvalues (ascending) and eigenvectors.

    Uses the symmetric solver: at ρ = 1/2 the normalized Laplacian is
    symmetric; for ρ ≠ 1/2 it is similar to the symmetric one, and we
    decompose the symmetric similar matrix so eigenvalues stay real.

    Results are memoized per (graph, adjacency fingerprint, ρ): repeated
    calls on an unmutated graph return the same (read-only) arrays and
    count a ``cache.eig.hit`` instead of re-running the O(n³) solve.
    """
    n = graph.num_nodes
    if n > MAX_DENSE_NODES:
        raise GraphError(
            f"dense eigendecomposition capped at {MAX_DENSE_NODES} nodes "
            f"(got {n}); use extremal_eigenvalues for large graphs"
        )
    if not _cache.is_enabled():
        return _decompose_dense(graph)

    key = (id(graph), float(rho))
    token = _cache.matrix_token(graph.adjacency)

    def validate(entry) -> bool:
        ref, cached_token, _ = entry
        return ref() is graph and cached_token == token

    cached = _eig_cache.get(key, validate=validate)
    if cached is not _cache.MISSING:
        return cached[2]
    eigenvalues, eigenvectors = _decompose_dense(graph)
    # Shared across callers from now on — freeze to catch silent mutation.
    eigenvalues.setflags(write=False)
    eigenvectors.setflags(write=False)

    def _on_collect(_ref, _key=key):
        _eig_cache.discard(_key)

    _eig_cache.put(key, (weakref.ref(graph, _on_collect), token,
                         (eigenvalues, eigenvectors)))
    return eigenvalues, eigenvectors


def extremal_eigenvalues(graph: Graph, rho: float = 0.5, k: int = 2
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Smallest and largest ``k`` eigenvalues of ``L̃`` via sparse Lanczos."""
    laplacian = graph.laplacian(rho=0.5).astype(np.float64)
    laplacian = (laplacian + laplacian.T) / 2.0
    small = spla.eigsh(laplacian, k=k, which="SA", return_eigenvectors=False)
    large = spla.eigsh(laplacian, k=k, which="LA", return_eigenvectors=False)
    # Order-of-magnitude FLOP estimate: two Lanczos solves, each ~10
    # restarts of ncv matvecs at 2·nnz FLOPs (scipy's default subspace).
    ncv = min(graph.num_nodes, max(2 * k + 1, 20))
    nnz = laplacian.nnz if sp.issparse(laplacian) else laplacian.size
    _notify_op("eig", 2 * 10 * ncv * 2 * nnz, small.nbytes + large.nbytes)
    return np.sort(small), np.sort(large)


def spectral_density(graph: Graph, bins: int = 20, rho: float = 0.5) -> np.ndarray:
    """Histogram of the Laplacian spectrum over [0, 2] (small graphs)."""
    eigenvalues, _ = laplacian_eigendecomposition(graph, rho)
    histogram, _ = np.histogram(eigenvalues, bins=bins, range=(0.0, 2.0))
    return histogram / histogram.sum()
