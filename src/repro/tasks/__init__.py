"""Benchmark tasks: node classification, link prediction, signal regression."""

from .link_prediction import (
    LinkPredictionResult,
    LinkPredictor,
    run_link_prediction,
)
from .node_classification import (
    SeedSummary,
    build_task_filter,
    run_node_classification,
    run_seeds,
)
from .signal_regression import RegressionResult, run_signal_regression
from .tuning import TuningOutcome, tune_and_run

__all__ = [
    "run_node_classification",
    "run_seeds",
    "build_task_filter",
    "SeedSummary",
    "run_link_prediction",
    "LinkPredictor",
    "LinkPredictionResult",
    "run_signal_regression",
    "RegressionResult",
    "tune_and_run",
    "TuningOutcome",
]
