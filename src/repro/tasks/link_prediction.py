"""Link prediction under the mini-batch scheme (Section 6.1.2, Figure 6).

The paper's point: link prediction *forces* mini-batch training — the
model scores κ·m positive/negative node pairs per epoch, so the
transformation cost O(κmF²) dominates and full-scale device residency is
prohibitive. The pipeline here mirrors that: filter channels are
precomputed once on CPU, then an MLP scores Hadamard products of node
embeddings over edge batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..autodiff import functional as F
from ..autodiff.tensor import Tensor, no_grad
from ..datasets.splits import edge_split
from ..errors import DeviceOOMError, TrainingError
from ..filters.base import SpectralFilter
from ..graph.graph import Graph
from ..models.decoupled import MiniBatchModel
from ..nn.linear import MLP
from ..nn.module import Module
from ..runtime.profiler import StageProfiler
from ..training.loop import TrainConfig, make_device
from ..training.metrics import roc_auc
from .node_classification import build_task_filter


class LinkPredictor(Module):
    """Combine precomputed channels into embeddings, score node pairs.

    ``forward`` takes two (B, C, F) channel batches (edge endpoints) and
    returns one logit per pair via an MLP on the Hadamard product of the
    endpoint embeddings — the paper's "simple MLP network" downstream
    module.
    """

    def __init__(self, filter_: SpectralFilter, in_features: int,
                 hidden: int = 64, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.encoder = MiniBatchModel(
            filter_, in_features=in_features, out_features=hidden,
            hidden=hidden, phi1_layers=1, dropout=dropout, rng=rng)
        self.scorer = MLP(hidden, 1, hidden=hidden, num_layers=2,
                          dropout=dropout, rng=rng)

    def forward(self, source_batch: Tensor, target_batch: Tensor) -> Tensor:
        source = self.encoder(source_batch)
        target = self.encoder(target_batch)
        return self.scorer(source * target).reshape(-1)


@dataclass
class LinkPredictionResult:
    """Outcome of one link-prediction run."""

    status: str
    test_auc: float = float("nan")
    epochs_run: int = 0
    profiler: StageProfiler = field(default_factory=StageProfiler)
    device_peak_bytes: int = 0
    ram_peak_bytes: int = 0

    @property
    def is_oom(self) -> bool:
        return self.status == "oom"


def _sample_negatives(rng: np.random.Generator, num_nodes: int,
                      count: int) -> np.ndarray:
    """Uniform negative pairs (u ≠ v); collisions with real edges are rare
    on sparse graphs and standard practice tolerates them."""
    sources = rng.integers(0, num_nodes, size=count)
    targets = rng.integers(0, num_nodes, size=count)
    clash = sources == targets
    targets[clash] = (targets[clash] + 1) % num_nodes
    return np.stack([sources, targets], axis=1)


def run_link_prediction(
    graph: Graph,
    filter_name: str,
    config: Optional[TrainConfig] = None,
    kappa: int = 2,
    num_hops: int = 10,
    device_capacity_gib: Optional[float] = None,
) -> LinkPredictionResult:
    """Train and evaluate MB link prediction with one spectral filter.

    Parameters
    ----------
    kappa:
        Negative-sampling ratio; the paper's κ ∈ [2, 10] multiplies the
        per-epoch transformation volume.
    """
    if kappa < 1:
        raise TrainingError(f"kappa must be >= 1, got {kappa}")
    config = config or TrainConfig()
    rng = config.rng()
    device = make_device(device_capacity_gib, name="lp-device")
    result = LinkPredictionResult(status="ok")
    profiler = result.profiler

    edges = graph.edge_list()
    train_edges, _, test_edges = edge_split(edges, seed=config.seed)

    try:
        filter_ = build_task_filter(filter_name, graph, config, "mini_batch",
                                    num_hops=num_hops)
        with profiler.stage("precompute", op_class="propagation"):
            channels = filter_.precompute(graph, graph.features,
                                          rho=config.rho, backend=config.backend)
        profiler.record_ram("precompute", channels.nbytes)

        model = LinkPredictor(filter_, in_features=graph.num_features,
                              hidden=config.hidden, dropout=config.dropout, rng=rng)
        from ..training.loop import build_optimizer

        optimizer = build_optimizer(model, config)
        device.to_device(sum(p.data.nbytes for p in model.parameters()))

        order = np.arange(len(train_edges))
        for epoch in range(config.epochs):
            model.train()
            rng.shuffle(order)
            with profiler.stage("train", op_class="transform"):
                for start in range(0, len(order), config.batch_size):
                    batch_edges = train_edges[order[start:start + config.batch_size]]
                    negatives = _sample_negatives(
                        rng, graph.num_nodes, kappa * len(batch_edges))
                    pairs = np.concatenate([batch_edges, negatives], axis=0)
                    targets = np.concatenate([
                        np.ones(len(batch_edges), dtype=np.float32),
                        np.zeros(len(negatives), dtype=np.float32),
                    ])
                    with device.step():
                        logits = model(Tensor(channels[pairs[:, 0]]),
                                       Tensor(channels[pairs[:, 1]]))
                        loss = F.binary_cross_entropy_with_logits(logits, targets)
                        model.zero_grad()
                        loss.backward()
                        optimizer.step()
            result.epochs_run = epoch + 1

        with profiler.stage("inference", op_class="transform"):
            negatives = _sample_negatives(rng, graph.num_nodes, len(test_edges))
            pairs = np.concatenate([test_edges, negatives], axis=0)
            targets = np.concatenate([
                np.ones(len(test_edges)), np.zeros(len(negatives))])
            scores = []
            model.eval()
            with no_grad():
                for start in range(0, len(pairs), config.batch_size):
                    chunk = pairs[start:start + config.batch_size]
                    with device.step():
                        scores.append(
                            model(Tensor(channels[chunk[:, 0]]),
                                  Tensor(channels[chunk[:, 1]])).data)
            result.test_auc = roc_auc(np.concatenate(scores), targets.astype(int))
    except DeviceOOMError:
        result.status = "oom"
    result.device_peak_bytes = device.peak_bytes
    profiler.record_device("train", device.peak_bytes)
    result.ram_peak_bytes = profiler.peak_ram_bytes()
    return result
