"""Tune-then-evaluate: the paper's per-(filter, dataset) protocol in one call.

Section 4's procedure — fix the universal configuration, search the
individual hyperparameters (Table 4 ranges) on the validation score, then
report the test score of the best configuration — packaged as
:func:`tune_and_run` so sweeps and users apply the identical protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..datasets.splits import Split, random_split
from ..graph.graph import Graph
from ..training.hyper import FILTER_SEARCH_RANGES, SearchSpace, random_search
from ..training.loop import RunResult, TrainConfig
from .node_classification import run_node_classification


@dataclass
class TuningOutcome:
    """Search result plus the final test-time run."""

    best_config: TrainConfig
    best_filter_hp: Dict[str, float]
    best_valid_score: float
    final: RunResult
    trace: list

    @property
    def test_score(self) -> float:
        return self.final.test_score


def tune_and_run(
    graph: Graph,
    filter_name: str,
    scheme: str = "full_batch",
    base_config: Optional[TrainConfig] = None,
    split: Optional[Split] = None,
    budget: int = 8,
    num_hops: int = 10,
    seed: int = 0,
) -> TuningOutcome:
    """Search Table 4's individual hyperparameters, then evaluate the best.

    The search optimizes the *validation* score on the given split; the
    returned run's ``test_score`` is only read once, for the winner —
    matching the paper's protocol and avoiding test leakage.
    """
    base_config = base_config or TrainConfig()
    if split is None:
        split = random_split(graph.num_nodes, seed=seed)
    space = SearchSpace.default(FILTER_SEARCH_RANGES.get(filter_name))

    def objective(config: TrainConfig, filter_hp: Dict[str, float]) -> float:
        result = run_node_classification(
            graph, filter_name, scheme=scheme, config=config, split=split,
            num_hops=num_hops, filter_hp=filter_hp)
        return -1.0 if result.is_oom else result.valid_score

    best_config, best_hp, best_valid, trace = random_search(
        objective, space, base_config, budget=budget, seed=seed)
    final = run_node_classification(
        graph, filter_name, scheme=scheme, config=best_config, split=split,
        num_hops=num_hops, filter_hp=best_hp)
    return TuningOutcome(
        best_config=best_config,
        best_filter_hp=best_hp,
        best_valid_score=best_valid,
        final=final,
        trace=trace,
    )
