"""Node classification: the benchmark's main task (Section 5).

:func:`run_node_classification` is the single entry point the harness and
examples call: it wires a dataset (or pre-built graph), a filter from the
registry, a learning scheme, and a simulated device into one seeded run,
and :func:`run_seeds` aggregates the multi-seed statistics the paper's
tables report (mean ± std over 10 seeds by default).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets.splits import Split, random_split
from ..filters.registry import make_filter
from ..graph.graph import Graph
from ..training.loop import RunResult, TrainConfig, make_device
from ..training.schemes import SCHEMES


def build_task_filter(
    filter_name: str,
    graph: Graph,
    config: TrainConfig,
    scheme: str,
    num_hops: int = 10,
    filter_hp: Optional[Dict[str, float]] = None,
):
    """Instantiate a registry filter sized for the scheme's signal width.

    AdaGNN's per-feature γ bank must match the width of the signal the
    filter actually sees: φ0's output under full batch, the raw attributes
    under mini batch (which has no φ0).
    """
    filter_hp = dict(filter_hp or {})
    if scheme == "mini_batch" or config.phi0_layers == 0:
        width = graph.num_features
    else:
        width = config.hidden
    return make_filter(filter_name, num_hops=num_hops, num_features=width,
                       **filter_hp)


def run_node_classification(
    graph: Graph,
    filter_name: str,
    scheme: str = "full_batch",
    config: Optional[TrainConfig] = None,
    split: Optional[Split] = None,
    num_hops: int = 10,
    filter_hp: Optional[Dict[str, float]] = None,
    device_capacity_gib: Optional[float] = None,
    num_parts: int = 4,
) -> RunResult:
    """One seeded training run of one filter under one scheme.

    Parameters
    ----------
    graph:
        An attributed, labelled :class:`Graph` (e.g. from
        :func:`repro.datasets.synthesize`).
    filter_name:
        Registry name (one of :data:`repro.filters.FILTER_NAMES`).
    scheme:
        ``"full_batch"`` | ``"mini_batch"`` | ``"graph_partition"``.
    device_capacity_gib:
        Simulated accelerator capacity; runs exceeding it return
        ``status="oom"`` instead of raising.
    """
    config = config or TrainConfig()
    if split is None:
        split = random_split(graph.num_nodes, seed=config.seed)
    filter_ = build_task_filter(filter_name, graph, config, scheme,
                                num_hops=num_hops, filter_hp=filter_hp)
    device = make_device(device_capacity_gib, name=f"{scheme}-device")
    if scheme == "graph_partition":
        trainer = SCHEMES[scheme](num_parts=num_parts, device=device)
    else:
        trainer = SCHEMES[scheme](device=device)
    return trainer.fit(graph, split, filter_, config)


@dataclass
class SeedSummary:
    """Multi-seed aggregate of one configuration (a table cell)."""

    scores: List[float]
    results: List[RunResult]

    @property
    def status(self) -> str:
        return "oom" if any(r.is_oom for r in self.results) else "ok"

    @property
    def mean(self) -> float:
        return float(np.mean(self.scores)) if self.scores else float("nan")

    @property
    def std(self) -> float:
        return float(np.std(self.scores)) if self.scores else float("nan")

    def cell(self, percent: bool = True) -> str:
        """Render like the paper: ``86.58±1.96`` or ``(OOM)``."""
        if self.status == "oom":
            return "(OOM)"
        factor = 100.0 if percent else 1.0
        return f"{self.mean * factor:.2f}±{self.std * factor:.2f}"


def run_seeds(
    graph: Graph,
    filter_name: str,
    scheme: str = "full_batch",
    config: Optional[TrainConfig] = None,
    seeds: Sequence[int] = (0, 1, 2),
    shared_split_seed: Optional[int] = None,
    **kwargs,
) -> SeedSummary:
    """Repeat a run over seeds; each seed re-draws the random split unless
    ``shared_split_seed`` pins one split for all seeds (Figure 4 protocol).
    """
    config = config or TrainConfig()
    scores: List[float] = []
    results: List[RunResult] = []
    for seed in seeds:
        seeded = replace(config, seed=seed)
        split_seed = shared_split_seed if shared_split_seed is not None else seed
        split = random_split(graph.num_nodes, seed=split_seed)
        result = run_node_classification(
            graph, filter_name, scheme=scheme, config=seeded, split=split, **kwargs)
        results.append(result)
        if not result.is_oom:
            scores.append(result.test_score)
    return SeedSummary(scores=scores, results=results)
