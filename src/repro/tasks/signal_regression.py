"""Signal regression: fit a filter to a known transfer function (Table 7).

Given an input signal x and the exact target ``z = g*(Λ) ∗ x`` (built by
:func:`repro.datasets.make_regression_task`), the filter's parameters are
trained to minimize MSE; the reported R² directly measures how much of
the transfer function's shape the filter family can express — the paper's
cleanest probe of "inherent frequency response" (RQ7).

Fixed filters have nothing to train, so a closed-form affine calibration
(scale + offset, what a linear output layer would learn) is applied before
scoring; variable and bank filters train θ/γ with Adam.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..autodiff import functional as F
from ..autodiff.optim import Adam
from ..autodiff.tensor import Tensor
from ..datasets.signals import RegressionTask, make_regression_task
from ..filters.base import PropagationContext
from ..filters.registry import make_filter
from ..graph.graph import Graph
from ..nn.module import Parameter
from ..training.metrics import r2_score


@dataclass
class RegressionResult:
    """Outcome of fitting one filter to one signal function."""

    filter_name: str
    signal_name: str
    r2: float
    learned_params: Optional[Dict[str, np.ndarray]] = None


def _affine_calibrate(prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Closed-form per-run scale+offset (a linear readout's best fit)."""
    x = prediction.reshape(-1)
    y = target.reshape(-1)
    var = float(((x - x.mean()) ** 2).sum())
    if var < 1e-12:
        return np.full_like(prediction, y.mean())
    slope = float(((x - x.mean()) * (y - y.mean())).sum() / var)
    intercept = float(y.mean() - slope * x.mean())
    return slope * prediction + intercept


def run_signal_regression(
    graph: Graph,
    filter_name: str,
    signal_name: str,
    num_hops: int = 10,
    epochs: int = 200,
    lr: float = 0.05,
    seed: int = 0,
    rho: float = 0.5,
    task: Optional[RegressionTask] = None,
) -> RegressionResult:
    """Fit one filter to one of the five Table 7 transfer functions.

    Runs on graphs small enough for exact eigendecomposition (the target
    requires the true spectrum).
    """
    if task is None:
        task = make_regression_task(graph, signal_name, seed=seed, rho=rho)
    filter_ = make_filter(filter_name, num_hops=num_hops,
                          num_features=task.input_signal.shape[1])
    ctx_factory = lambda: PropagationContext.for_graph(graph, rho)

    spec = filter_.parameter_spec()
    if not spec:
        output = filter_.forward(ctx_factory(), task.input_signal)
        calibrated = _affine_calibrate(np.asarray(output), task.target_signal)
        return RegressionResult(filter_name, task.name,
                                r2_score(calibrated, task.target_signal))

    params = {name: Parameter(s.init.copy()) for name, s in spec.items()}
    optimizer = Adam(list(params.values()), lr=lr)
    x = Tensor(task.input_signal)
    best_r2 = -np.inf
    best_params: Dict[str, np.ndarray] = {}
    for _ in range(epochs):
        output = filter_.forward(ctx_factory(), x, params)
        loss = F.mse_loss(output, task.target_signal)
        for p in params.values():
            p.grad = None
        loss.backward()
        optimizer.step()
        current = r2_score(output.data, task.target_signal)
        if current > best_r2:
            best_r2 = current
            best_params = {k: v.data.copy() for k, v in params.items()}
    return RegressionResult(filter_name, task.name, float(best_r2), best_params)
